"""Induced subgraphs G[U] (paper SS II-A).

Two forms are provided: a *materialized* induced subgraph with compacted
vertex ids (used by DEC-ADG to hand partitions to SIM-COL, and by the
sharding layer to hand shards to per-process engines) and cheap
mask-based degree computations for the peeling loops that never need to
rebuild CSR.

Materialization is one ``batch_neighbors`` pass.  When the subset is
given in ascending id order the local relabeling is monotone, so the
gathered rows — already sorted by original id — stay sorted locally and
the per-row re-sort is skipped entirely; an arbitrary subset order pays
one lexsort.  Every subgraph carries its ``index_map`` (original id ->
local id, -1 outside the subset), so callers that need the inverse
mapping (ghost resolution, cross-shard edge bookkeeping) get it for
free instead of rebuilding the scatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class InducedSubgraph:
    """G[U] with vertices renumbered 0..|U|-1, plus the id mappings.

    ``vertices`` maps local -> original (``vertices[i]`` is the original
    id of local vertex ``i``); ``index_map`` is the inverse scatter over
    the *parent* id space (original -> local, ``-1`` outside U).
    """

    graph: CSRGraph
    vertices: np.ndarray  # original ids; vertices[i] is the original id of i
    index_map: np.ndarray | None = None  # parent-sized original -> local map

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    def to_original(self, local_ids: np.ndarray) -> np.ndarray:
        """Map local vertex ids back to ids in the parent graph."""
        return self.vertices[np.asarray(local_ids, dtype=np.int64)]

    def to_local(self, original_ids: np.ndarray) -> np.ndarray:
        """Map parent-graph ids to local ids (-1 for ids outside U)."""
        if self.index_map is None:
            raise ValueError("subgraph carries no index_map")
        return self.index_map[np.asarray(original_ids, dtype=np.int64)]


def _gather_edges(g: CSRGraph, vertices: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The one shared extraction pass: local map + gathered neighbors.

    Returns ``(local, seg, nbrs, keep)`` where ``local`` is the
    original -> local scatter (-1 outside the subset), ``(seg, nbrs)``
    the concatenated neighbor lists of the subset, and ``keep`` marks
    the neighbor entries that stay inside the subset.
    """
    if vertices.size != np.unique(vertices).size:
        raise ValueError("vertex subset contains duplicates")
    local = np.full(g.n, -1, dtype=np.int64)
    local[vertices] = np.arange(vertices.size, dtype=np.int64)
    seg, nbrs = g.batch_neighbors(vertices)
    keep = local[nbrs] >= 0
    return local, seg, nbrs, keep


def _build(g: CSRGraph, vertices: np.ndarray, local: np.ndarray,
           seg: np.ndarray, nbrs: np.ndarray, keep: np.ndarray,
           name: str | None) -> InducedSubgraph:
    """Assemble the local CSR from one extraction pass."""
    src_local = seg[keep]
    dst_local = local[nbrs[keep]]
    indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_local, minlength=vertices.size), out=indptr[1:])
    # batch_neighbors returns rows already sorted by original id.  For an
    # ascending subset the local relabeling is monotone, so the rows are
    # already sorted by local id too and the per-row re-sort is skipped;
    # an arbitrary subset order needs one lexsort.
    if vertices.size < 2 or np.all(np.diff(vertices) > 0):
        indices = dst_local
    else:
        order = np.lexsort((dst_local, src_local))
        indices = dst_local[order]
    sub = CSRGraph(indptr=indptr, indices=indices,
                   name=name or f"{g.name}[{vertices.size}]")
    return InducedSubgraph(graph=sub, vertices=vertices, index_map=local)


def induced_subgraph(g: CSRGraph, vertices: np.ndarray,
                     name: str | None = None) -> InducedSubgraph:
    """Materialize G[U] for a vertex subset (order of ``vertices`` is kept)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    local, seg, nbrs, keep = _gather_edges(g, vertices)
    return _build(g, vertices, local, seg, nbrs, keep, name)


def shard_extract(g: CSRGraph, vertices: np.ndarray,
                  name: str | None = None
                  ) -> tuple[InducedSubgraph, np.ndarray, np.ndarray]:
    """Ghost-aware extraction for the sharding layer — one pass.

    Returns ``(sub, boundary, ghosts)``: the induced subgraph (with its
    ``index_map``), the *boundary* vertices (original ids of subset
    members with at least one neighbor outside the subset), and the
    *ghost* vertices (sorted original ids of those outside neighbors).
    The same gathered neighbor arrays drive the CSR build and the
    boundary/ghost classification, so promoting a partition to a shard
    costs no second traversal.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    local, seg, nbrs, keep = _gather_edges(g, vertices)
    sub = _build(g, vertices, local, seg, nbrs, keep, name)
    outside = ~keep
    boundary = vertices[np.unique(seg[outside])]
    ghosts = np.unique(nbrs[outside])
    return sub, boundary, ghosts


def degrees_within(g: CSRGraph, active: np.ndarray) -> np.ndarray:
    """deg_U(v) for every v (0 outside U), where ``active`` is U's bitmap."""
    active = np.asarray(active, dtype=bool)
    if active.size != g.n:
        raise ValueError("active mask must have length n")
    verts = np.flatnonzero(active).astype(np.int64)
    out = np.zeros(g.n, dtype=np.int64)
    if verts.size == 0:
        return out
    seg, nbrs = g.batch_neighbors(verts)
    inside = active[nbrs]
    np.add.at(out, verts[seg[inside]], 1)
    return out


def edges_within(g: CSRGraph, active: np.ndarray) -> int:
    """|E[U]|: number of edges with both endpoints active."""
    return int(degrees_within(g, active).sum()) // 2
