"""Induced subgraphs G[U] (paper SS II-A).

Two forms are provided: a *materialized* induced subgraph with compacted
vertex ids (used by DEC-ADG to hand partitions to SIM-COL) and cheap
mask-based degree computations for the peeling loops that never need to
rebuild CSR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class InducedSubgraph:
    """G[U] with vertices renumbered 0..|U|-1, plus the id mapping."""

    graph: CSRGraph
    vertices: np.ndarray  # original ids; vertices[i] is the original id of i

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    def to_original(self, local_ids: np.ndarray) -> np.ndarray:
        """Map local vertex ids back to ids in the parent graph."""
        return self.vertices[np.asarray(local_ids, dtype=np.int64)]


def induced_subgraph(g: CSRGraph, vertices: np.ndarray,
                     name: str | None = None) -> InducedSubgraph:
    """Materialize G[U] for a vertex subset (order of ``vertices`` is kept)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size != np.unique(vertices).size:
        raise ValueError("vertex subset contains duplicates")
    local = np.full(g.n, -1, dtype=np.int64)
    local[vertices] = np.arange(vertices.size, dtype=np.int64)

    seg, nbrs = g.batch_neighbors(vertices)
    keep = local[nbrs] >= 0
    src_local = seg[keep]
    dst_local = local[nbrs[keep]]

    indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_local, minlength=vertices.size), out=indptr[1:])
    # batch_neighbors returns rows already sorted by original id; sorting by
    # local id requires a re-sort per row since the mapping is not monotone.
    order = np.lexsort((dst_local, src_local))
    sub = CSRGraph(indptr=indptr, indices=dst_local[order],
                   name=name or f"{g.name}[{vertices.size}]")
    return InducedSubgraph(graph=sub, vertices=vertices)


def degrees_within(g: CSRGraph, active: np.ndarray) -> np.ndarray:
    """deg_U(v) for every v (0 outside U), where ``active`` is U's bitmap."""
    active = np.asarray(active, dtype=bool)
    if active.size != g.n:
        raise ValueError("active mask must have length n")
    verts = np.flatnonzero(active).astype(np.int64)
    out = np.zeros(g.n, dtype=np.int64)
    if verts.size == 0:
        return out
    seg, nbrs = g.batch_neighbors(verts)
    inside = active[nbrs]
    np.add.at(out, verts[seg[inside]], 1)
    return out


def edges_within(g: CSRGraph, active: np.ndarray) -> int:
    """|E[U]|: number of edges with both endpoints active."""
    return int(degrees_within(g, active).sum()) // 2
