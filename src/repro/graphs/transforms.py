"""Graph transforms: relabelings and component extraction.

Vertex order affects the cache behavior of CSR traversals and the
quality of FF-style heuristics (the paper's JP-FF results depend on the
crawl order of the input ids); these transforms let experiments control
for it.
"""

from __future__ import annotations

import numpy as np

from .builders import relabel
from .csr import CSRGraph
from .properties import connected_components
from .subgraph import InducedSubgraph, induced_subgraph


def relabel_by_degree(g: CSRGraph, descending: bool = True) -> CSRGraph:
    """New ids sorted by degree (hubs first by default)."""
    deg = g.degrees
    order = np.argsort(-deg if descending else deg, kind="stable")
    perm = np.empty(g.n, dtype=np.int64)
    perm[order] = np.arange(g.n)
    return relabel(g, perm, name=f"{g.name}-bydeg")


def relabel_random(g: CSRGraph, seed: int | None = 0) -> CSRGraph:
    """Uniformly random new ids (destroys any crawl-order locality)."""
    rng = np.random.default_rng(seed)
    return relabel(g, rng.permutation(g.n).astype(np.int64),
                   name=f"{g.name}-shuffled")


def relabel_bfs(g: CSRGraph, source: int = 0) -> CSRGraph:
    """BFS visit order from ``source`` (unreached vertices appended)."""
    if g.n == 0:
        return g
    seen = np.zeros(g.n, dtype=bool)
    order: list[np.ndarray] = []
    frontier = np.asarray([source], dtype=np.int64)
    seen[source] = True
    order.append(frontier)
    while frontier.size:
        seg, nbrs = g.batch_neighbors(frontier)
        fresh = np.unique(nbrs[~seen[nbrs]])
        seen[fresh] = True
        if fresh.size:
            order.append(fresh)
        frontier = fresh
    rest = np.flatnonzero(~seen)
    if rest.size:
        order.append(rest)
    visit = np.concatenate(order)
    perm = np.empty(g.n, dtype=np.int64)
    perm[visit] = np.arange(g.n)
    return relabel(g, perm, name=f"{g.name}-bfs")


def largest_component(g: CSRGraph) -> InducedSubgraph:
    """The induced subgraph of the largest connected component."""
    if g.n == 0:
        return induced_subgraph(g, np.empty(0, dtype=np.int64))
    labels = connected_components(g)
    sizes = np.bincount(labels)
    big = int(np.argmax(sizes))
    return induced_subgraph(g, np.flatnonzero(labels == big),
                            name=f"{g.name}-lcc")
