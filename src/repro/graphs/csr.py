"""CSR graph representation (paper SS II-A).

The paper stores G as CSR: n sorted neighbor arrays (2m words) plus
offsets (n words).  :class:`CSRGraph` is an immutable undirected simple
graph over vertices {0, ..., n-1} with ``indptr`` (n+1 int64 offsets)
and ``indices`` (2m int64 neighbor ids, sorted within each row).
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..primitives.kernels import multi_slice_gather, segment_ids

#: The cached_property names that derive from indptr/indices and must
#: be dropped whenever the arrays are swapped (see replace_arrays).
_DERIVED_CACHES = ("degrees", "max_degree", "min_degree", "content_digest")


@dataclass(frozen=True)
class CSRGraph:
    """An undirected simple graph in compressed sparse row form.

    Invariants (enforced by :meth:`validate`, guaranteed by all
    constructors in :mod:`repro.graphs.builders`):

    - ``indptr`` is non-decreasing with ``indptr[0] == 0`` and
      ``indptr[n] == len(indices)``;
    - each row of ``indices`` is strictly increasing (sorted, no
      duplicate edges, no self-loops);
    - symmetry: ``u in N(v)`` iff ``v in N(u)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = field(default="graph", compare=False)

    # -- basic shape ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.indptr.size - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.indices.size // 2

    @cached_property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex.

        Cached per instance and marked read-only — peeling algorithms
        that decrement degrees must take ``.copy()``.  (The graph is
        immutable, so the cache can never go stale.)
        """
        deg = np.diff(self.indptr).astype(np.int64)
        deg.flags.writeable = False
        return deg

    @cached_property
    def max_degree(self) -> int:
        """Delta: the maximum degree (0 for an empty graph)."""
        if self.n == 0:
            return 0
        return int(self.degrees.max())

    @cached_property
    def min_degree(self) -> int:
        """delta: the minimum degree (0 for an empty graph)."""
        if self.n == 0:
            return 0
        return int(self.degrees.min())

    @cached_property
    def content_digest(self) -> str:
        """Stable content hash of the adjacency structure (16 hex chars).

        Two graphs share a digest iff they share the exact
        indptr/indices arrays — the ledger's cell identity and the
        service cache's graph key.  Cached per instance;
        :meth:`replace_arrays` invalidates it along with the cached
        degree statistics, so a mutated graph can never answer with a
        stale digest.
        """
        h = hashlib.sha256()
        h.update(f"{self.n}:{self.m}:".encode())
        # Feed the raw buffers (same bytes as .tobytes()) so hashing a
        # large graph never materializes a second copy of its arrays.
        h.update(np.ascontiguousarray(self.indptr).data)
        h.update(np.ascontiguousarray(self.indices).data)
        return h.hexdigest()[:16]

    @property
    def avg_degree(self) -> float:
        """delta-hat: the average degree (0.0 for an empty graph)."""
        if self.n == 0:
            return 0.0
        return 2.0 * self.m / self.n

    # -- access ----------------------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of a single vertex."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def batch_neighbors(self, batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbor lists of a vertex batch.

        Returns ``(sources, neighbors)`` where ``sources[j]`` is the
        *position in the batch* owning ``neighbors[j]`` — the flattened
        "for all v in batch: for all u in N(v)" loop.
        """
        batch = np.asarray(batch, dtype=np.int64)
        counts = (self.indptr[batch + 1] - self.indptr[batch]).astype(np.int64)
        nbrs = multi_slice_gather(self.indices, self.indptr[batch], counts)
        return segment_ids(counts), nbrs

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """All directed arcs as (src, dst) arrays of length 2m."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return src, self.indices.astype(np.int64, copy=False)

    def undirected_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Each undirected edge once, as (u, v) arrays with u < v."""
        src, dst = self.edge_array()
        keep = src < dst
        return src[keep], dst[keep]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in the sorted row of u."""
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and int(row[i]) == v

    # -- mutation (delta application) -----------------------------------------

    def invalidate_caches(self) -> None:
        """Drop every cached property derived from the arrays.

        ``degrees`` / ``max_degree`` / ``min_degree`` /
        ``content_digest`` are all cached per instance under the
        immutability assumption; any helper that swaps the arrays must
        call this (``replace_arrays`` does) or stale statistics — and,
        worse, a stale digest keying a result cache — survive the
        mutation.
        """
        for name in _DERIVED_CACHES:
            self.__dict__.pop(name, None)

    def replace_arrays(self, indptr: np.ndarray,
                       indices: np.ndarray) -> None:
        """Swap in a new adjacency structure, in place.

        The one sanctioned mutation seam (used by
        :func:`repro.graphs.delta.apply_delta` with ``in_place=True``):
        the dataclass is frozen, so the swap goes through
        ``object.__setattr__``, and every derived cache is invalidated
        so degree statistics and the content digest are recomputed on
        next access.  ``n`` may change (vertex additions); callers keep
        per-vertex arrays aligned themselves.
        """
        if indptr.size == 0 or indptr[0] != 0 \
                or indptr[-1] != indices.size:
            raise ValueError("replace_arrays: inconsistent indptr/indices")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        self.invalidate_caches()

    # -- integrity -------------------------------------------------------------

    def validate(self) -> None:
        """Raise ValueError if any CSR invariant is violated."""
        if self.indptr.size == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr[-1] must equal len(indices)")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n:
                raise ValueError("neighbor id out of range")
        src, dst = self.edge_array()
        if np.any(src == dst):
            raise ValueError("self-loop present")
        if self.indices.size > 1:
            # Strictly-increasing rows, vectorized: adjacent-pair diffs
            # must be positive everywhere except across row boundaries
            # (pairs straddling indptr cuts), which are masked out.
            d = np.diff(self.indices)
            within_row = np.ones(d.size, dtype=bool)
            cuts = self.indptr[1:-1]
            cuts = cuts[(cuts > 0) & (cuts <= d.size)]
            within_row[cuts - 1] = False
            bad = np.flatnonzero(within_row & (d <= 0))
            if bad.size:
                v = int(np.searchsorted(self.indptr, bad[0],
                                        side="right")) - 1
                raise ValueError(f"row {v} not strictly increasing")
        # Symmetry: the multiset of arcs equals its transpose.
        fwd = src * self.n + dst
        rev = dst * self.n + src
        if not np.array_equal(np.sort(fwd), np.sort(rev)):
            raise ValueError("adjacency not symmetric")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(name={self.name!r}, n={self.n}, m={self.m})"
