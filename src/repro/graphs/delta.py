"""Graph deltas: batched edge/vertex mutations against a CSR graph.

Dynamic-graph workloads (the coloring service, incremental recoloring)
describe changes as a :class:`GraphDelta` — batches of edge inserts and
deletes plus vertex additions and removals — and apply them with
:func:`apply_delta`, a *merge-based* CSR rebuild: O(m + k log m) for a
k-change delta, never a full re-sort of the edge list.

Semantics (chosen so vertex ids — and therefore color arrays, level
arrays, and priorities — stay aligned across deltas):

- **edge insert** ``(u, v)``: added in both directions; inserting an
  edge that already exists is a no-op (``strict=True`` raises).
- **edge delete** ``(u, v)``: removed in both directions; deleting a
  missing edge is a no-op (``strict=True`` raises).
- **vertex add**: ``add_vertices`` new isolated vertices are appended
  with ids ``n .. n+k-1`` (connect them via ``add_edges`` in the same
  delta — the ids are deterministic).
- **vertex remove**: the vertex is *isolated* (all incident edges
  dropped), never renumbered — so every per-vertex array keeps its
  meaning and the id can be reconnected later.

The CLI and the service speak a compact spec grammar
(:func:`parse_delta_spec`)::

    add:0-5,3-7;del:1-2;addv:2;delv:9

Applying a delta either builds a fresh :class:`CSRGraph` or, with
``in_place=True``, swaps the arrays on the existing instance through
:meth:`CSRGraph.replace_arrays` — which invalidates the cached degree
statistics and content digest, so digest-keyed caches never serve a
stale entry for a mutated graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphDelta", "AppliedDelta", "apply_delta",
           "parse_delta_spec", "format_delta_spec"]


def _pairs(edges) -> np.ndarray:
    """Normalize edge input to a (k, 2) int64 array with u < v, deduped.

    ``None`` means "no edges" (service requests omit unused fields)."""
    if edges is None:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray)
                     else edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    arr = arr.reshape(-1, 2)
    if np.any(arr[:, 0] == arr[:, 1]):
        raise ValueError("delta edges must not be self-loops")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    return np.unique(np.column_stack([lo, hi]), axis=0)


@dataclass(frozen=True)
class GraphDelta:
    """One batch of mutations: edge inserts/deletes, vertex adds/removes.

    ``add_edges`` / ``remove_edges`` are (k, 2) arrays (any orientation,
    duplicates allowed — normalized to u < v and deduped on
    construction); ``add_vertices`` appends that many isolated vertices;
    ``remove_vertices`` isolates the named vertices.
    """

    add_edges: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    remove_edges: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    add_vertices: int = 0
    remove_vertices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_edges", _pairs(self.add_edges))
        object.__setattr__(self, "remove_edges", _pairs(self.remove_edges))
        rmv = np.unique(np.asarray(
            self.remove_vertices if self.remove_vertices is not None
            else (), dtype=np.int64))
        object.__setattr__(self, "remove_vertices", rmv)
        if self.add_vertices < 0:
            raise ValueError(f"add_vertices must be >= 0, "
                             f"got {self.add_vertices}")
        if rmv.size and rmv[0] < 0:
            raise ValueError("remove_vertices ids must be non-negative")
        both = _intersect_rows(self.add_edges, self.remove_edges)
        if both.size:
            raise ValueError("an edge cannot be both added and removed "
                             "in one delta")

    @property
    def is_empty(self) -> bool:
        return (self.add_edges.size == 0 and self.remove_edges.size == 0
                and self.add_vertices == 0
                and self.remove_vertices.size == 0)

    def describe(self) -> dict:
        """JSON-friendly summary (for service responses and ledgers)."""
        return {"add_edges": int(self.add_edges.shape[0]),
                "remove_edges": int(self.remove_edges.shape[0]),
                "add_vertices": int(self.add_vertices),
                "remove_vertices": int(self.remove_vertices.size)}


@dataclass(frozen=True)
class AppliedDelta:
    """The outcome of :func:`apply_delta`.

    ``added`` / ``removed`` list the undirected edges (u < v) that
    *actually* changed — no-op inserts/deletes are filtered out, and
    edges dropped by vertex isolation are included in ``removed``.
    ``touched`` is every vertex whose adjacency changed (the repair
    frontier seed for incremental recoloring).
    """

    graph: CSRGraph
    added: np.ndarray
    removed: np.ndarray
    new_vertices: np.ndarray
    removed_vertices: np.ndarray
    touched: np.ndarray


def _intersect_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=np.int64)
    span = max(int(a.max()), int(b.max())) + 1
    ka = a[:, 0] * np.int64(span) + a[:, 1]
    kb = b[:, 0] * np.int64(span) + b[:, 1]
    return np.intersect1d(ka, kb)


def apply_delta(g: CSRGraph, delta: GraphDelta, *, strict: bool = False,
                in_place: bool = False) -> AppliedDelta:
    """Apply one delta; returns the mutated graph plus the change set.

    The rebuild is a single merge pass: a keep-mask drops removed arcs
    from the old ``indices`` (binary search per explicit deletion,
    a flag gather for isolated vertices), inserted arcs land at their
    ``searchsorted`` positions via one :func:`numpy.insert`, and the new
    ``indptr`` is a cumulative sum of per-row arc counts — the rows stay
    sorted by construction, so no global re-sort ever happens.

    ``in_place=True`` swaps the arrays on ``g`` itself (invalidating its
    cached degrees and content digest); otherwise ``g`` is untouched and
    a fresh :class:`CSRGraph` is returned.
    """
    n_old = g.n
    n_new = n_old + int(delta.add_vertices)
    for name, pairs in (("add_edges", delta.add_edges),
                        ("remove_edges", delta.remove_edges)):
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n_new):
            raise ValueError(f"{name}: vertex id out of range [0, {n_new})")
    rmv = delta.remove_vertices
    if rmv.size and rmv.max() >= n_new:
        raise ValueError(f"remove_vertices: id out of range [0, {n_new})")
    if delta.add_edges.size and rmv.size:
        hit = np.isin(delta.add_edges, rmv)
        if hit.any():
            raise ValueError("an added edge references a vertex removed "
                             "in the same delta")

    mult = np.int64(max(n_new, 1))
    src = np.repeat(np.arange(n_old, dtype=np.int64), np.diff(g.indptr))
    dst = g.indices.astype(np.int64, copy=False)
    keys = src * mult + dst  # globally ascending: row-major, sorted rows

    # -- deletions: explicit edges + isolation of removed vertices ----------
    drop = np.zeros(keys.size, dtype=bool)
    rm = delta.remove_edges
    if rm.size:
        rkeys = np.sort(np.concatenate([rm[:, 0] * mult + rm[:, 1],
                                        rm[:, 1] * mult + rm[:, 0]]))
        pos = np.searchsorted(keys, rkeys)
        ok = pos < keys.size
        ok[ok] = keys[pos[ok]] == rkeys[ok]
        if strict and not ok.all():
            missing = rkeys[~ok][0]
            raise ValueError(f"remove_edges: edge "
                             f"({missing // mult}, {missing % mult}) "
                             f"not present")
        drop[pos[ok]] = True
    if rmv.size:
        iso = np.zeros(n_new, dtype=bool)
        iso[rmv] = True
        drop |= iso[src] | iso[dst]

    removed_pairs = np.empty((0, 2), dtype=np.int64)
    if drop.any():
        ds, dd = src[drop], dst[drop]
        fwd = ds < dd
        removed_pairs = np.column_stack([ds[fwd], dd[fwd]])

    # -- insertions: only edges not already present -------------------------
    add = delta.add_edges
    added_pairs = np.empty((0, 2), dtype=np.int64)
    if add.size:
        akeys = add[:, 0] * mult + add[:, 1]
        pos = np.searchsorted(keys, akeys)
        present = pos < keys.size
        present[present] = keys[pos[present]] == akeys[present]
        if strict and present.any():
            u, v = add[present][0]
            raise ValueError(f"add_edges: edge ({u}, {v}) already present")
        added_pairs = add[~present]

    keep = ~drop
    ksrc, kdst, kkeys = src[keep], dst[keep], keys[keep]
    ins_counts = np.zeros(0, dtype=np.int64)
    if added_pairs.size:
        ins_src = np.concatenate([added_pairs[:, 0], added_pairs[:, 1]])
        ins_dst = np.concatenate([added_pairs[:, 1], added_pairs[:, 0]])
        ins_keys = ins_src * mult + ins_dst
        order = np.argsort(ins_keys, kind="stable")
        ins_src, ins_dst = ins_src[order], ins_dst[order]
        indices_new = np.insert(kdst, np.searchsorted(kkeys, ins_keys[order]),
                                ins_dst)
        ins_counts = np.bincount(ins_src, minlength=n_new)
    else:
        indices_new = kdst.copy() if in_place else kdst
    counts = np.bincount(ksrc, minlength=n_new)
    if ins_counts.size:
        counts = counts + ins_counts
    indptr_new = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr_new[1:])
    indices_new = np.ascontiguousarray(indices_new, dtype=np.int64)

    if in_place:
        g.replace_arrays(indptr_new, indices_new)
        out = g
    else:
        out = CSRGraph(indptr=indptr_new, indices=indices_new, name=g.name)

    new_vertices = np.arange(n_old, n_new, dtype=np.int64)
    touched = np.unique(np.concatenate([
        added_pairs.ravel(), removed_pairs.ravel(), new_vertices, rmv]))
    return AppliedDelta(graph=out, added=added_pairs, removed=removed_pairs,
                        new_vertices=new_vertices, removed_vertices=rmv,
                        touched=touched)


# -- the spec grammar ---------------------------------------------------------

def _parse_pairs(body: str) -> list[tuple[int, int]]:
    pairs = []
    for tok in body.split(","):
        tok = tok.strip()
        if not tok:
            continue
        u, _, v = tok.partition("-")
        if not _:
            raise ValueError(f"bad edge token {tok!r} (want 'u-v')")
        pairs.append((int(u), int(v)))
    return pairs


def parse_delta_spec(spec: str) -> GraphDelta:
    """Parse the compact delta grammar.

    ``add:u-v,...`` and ``del:u-v,...`` list edges; ``addv:N`` appends N
    isolated vertices; ``delv:v,...`` isolates vertices.  Clauses are
    ``;``-separated and each may appear at most once::

        add:0-5,3-7;del:1-2;addv:2;delv:9
    """
    add_edges: list = []
    remove_edges: list = []
    add_vertices = 0
    remove_vertices: list = []
    seen = set()
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        op, sep, body = clause.partition(":")
        op = op.strip().lower()
        if not sep or op not in ("add", "del", "addv", "delv"):
            raise ValueError(f"bad delta clause {clause!r}; want "
                             f"add:/del:/addv:/delv:")
        if op in seen:
            raise ValueError(f"duplicate {op!r} clause in delta spec")
        seen.add(op)
        if op == "add":
            add_edges = _parse_pairs(body)
        elif op == "del":
            remove_edges = _parse_pairs(body)
        elif op == "addv":
            add_vertices = int(body)
        else:
            remove_vertices = [int(t) for t in body.split(",") if t.strip()]
    return GraphDelta(add_edges=add_edges, remove_edges=remove_edges,
                      add_vertices=add_vertices,
                      remove_vertices=remove_vertices)


def format_delta_spec(delta: GraphDelta) -> str:
    """The inverse of :func:`parse_delta_spec` (canonical clause order)."""
    parts = []
    if delta.add_edges.size:
        parts.append("add:" + ",".join(f"{u}-{v}"
                                       for u, v in delta.add_edges))
    if delta.remove_edges.size:
        parts.append("del:" + ",".join(f"{u}-{v}"
                                       for u, v in delta.remove_edges))
    if delta.add_vertices:
        parts.append(f"addv:{delta.add_vertices}")
    if delta.remove_vertices.size:
        parts.append("delv:" + ",".join(str(v)
                                        for v in delta.remove_vertices))
    return ";".join(parts)
