"""Uses of the ADG ordering beyond coloring (paper SS VII-VIII)."""

from .cliques import (
    count_maximal_cliques,
    max_clique,
    maximal_cliques,
    maximal_cliques_exact_order,
)
from .densest import DensestResult, densest_subgraph, subgraph_density
from .estimate import approximate_degeneracy

__all__ = [
    "maximal_cliques", "maximal_cliques_exact_order", "count_maximal_cliques",
    "max_clique",
    "DensestResult", "densest_subgraph", "subgraph_density",
    "approximate_degeneracy",
]
