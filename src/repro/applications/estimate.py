"""Fast approximate degeneracy from the ADG peeling structure.

The paper closes by noting ADG "is of separate interest ... for
algorithms that rely on vertex ordering".  The simplest such use: the
maximum degree-at-removal over the ADG batches sandwiches the exact
degeneracy,

    d  <=  max_v deg_U(v at removal)  <=  2(1+eps) d.

Lower bound: take the first-removed vertex of any subgraph H with
minimum degree d — the whole of H is still active, so its removal
degree is >= d.  Upper bound: Lemma 4.  This gives a polylog-depth
2(1+eps)-approximation of d without the sequential exact peel.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..machine.costmodel import CostModel


def approximate_degeneracy(g: CSRGraph, eps: float = 0.1,
                           cost: CostModel | None = None) -> int:
    """An estimate D with d <= D <= 2(1+eps)d, in O(log^2 n) depth."""
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    n = g.n
    if n == 0 or g.m == 0:
        return 0
    cost = cost if cost is not None else CostModel()
    D = g.degrees.copy()
    active = np.ones(n, dtype=bool)
    remaining = n
    sum_deg = int(D.sum())
    best = 0

    with cost.phase("approx-degeneracy"):
        while remaining:
            threshold = (1.0 + eps) * (sum_deg / remaining)
            removable = active & (D <= threshold)
            cost.parallel_for(remaining)
            batch = np.flatnonzero(removable)
            if batch.size == 0:  # pragma: no cover - min <= avg always
                raise RuntimeError("no progress")
            best = max(best, int(D[batch].max()))
            cost.reduce(batch.size)
            removed_sum = int(D[batch].sum())
            active[batch] = False
            remaining -= batch.size
            seg, nbrs = g.batch_neighbors(batch)
            live = nbrs[active[nbrs]]
            cost.scatter_decrement(nbrs.size)
            if live.size:
                np.subtract.at(D, live, 1)
            sum_deg = sum_deg - removed_sum - live.size
    return best
