"""Maximal clique enumeration in degeneracy order (Eppstein-Strash).

The paper points to maximal-clique mining as a consumer of degeneracy
orderings (SS VIII): processing vertices in (approximate) degeneracy
order caps the candidate set of each outer call at d (or 2(1+eps)d with
ADG), which is what makes Bron-Kerbosch near-optimal on sparse graphs.
Both the exact (SL) and the parallel-friendly approximate (ADG) order
are supported.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graphs.csr import CSRGraph
from ..ordering.adg import adg_ordering
from ..ordering.base import Ordering
from ..ordering.sl import sl_ordering


def maximal_cliques(g: CSRGraph, ordering: Ordering | None = None,
                    eps: float = 0.1) -> Iterator[list[int]]:
    """Yield every maximal clique exactly once.

    Outer loop over vertices in *increasing* rank (the degeneracy order:
    lowest-coreness vertices first); for each vertex v the candidate set
    P is v's higher-ranked neighbors (at most ~d of them) and the
    exclusion set X its lower-ranked neighbors; a pivoted Bron-Kerbosch
    finishes inside the small candidate set.
    """
    if ordering is None:
        ordering = adg_ordering(g, eps=eps, sort_batches=True)
    ranks = ordering.ranks
    adj = [set(g.neighbors(v).tolist()) for v in range(g.n)]

    # increasing rank = removal order of the peeling
    for v in np.argsort(ranks).tolist():
        later = {u for u in adj[v] if ranks[u] > ranks[v]}
        earlier = adj[v] - later
        yield from _bron_kerbosch_pivot([v], later, earlier, adj)


def _bron_kerbosch_pivot(r: list[int], p: set[int], x: set[int],
                         adj: list[set[int]]) -> Iterator[list[int]]:
    if not p and not x:
        yield sorted(r)
        return
    pivot = max(p | x, key=lambda u: len(p & adj[u]))
    for v in list(p - adj[pivot]):
        yield from _bron_kerbosch_pivot(r + [v], p & adj[v], x & adj[v], adj)
        p.discard(v)
        x.add(v)


def count_maximal_cliques(g: CSRGraph, ordering: Ordering | None = None,
                          eps: float = 0.1) -> int:
    """Number of maximal cliques."""
    return sum(1 for _ in maximal_cliques(g, ordering, eps))


def max_clique(g: CSRGraph, ordering: Ordering | None = None,
               eps: float = 0.1) -> list[int]:
    """A maximum clique (largest maximal clique; empty for empty graphs)."""
    best: list[int] = []
    for c in maximal_cliques(g, ordering, eps):
        if len(c) > len(best):
            best = c
    return best


def maximal_cliques_exact_order(g: CSRGraph) -> Iterator[list[int]]:
    """Enumeration under the exact degeneracy order (SL) — the
    Eppstein-Strash original; candidate sets capped at exactly d."""
    return maximal_cliques(g, ordering=sl_ordering(g))
