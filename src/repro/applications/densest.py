"""(2+eps)-approximate densest subgraph via ADG-style batch peeling.

The paper (SS VII) notes its ADG structure — batch-removing vertices
with degree below (1+eps) times the average — is the same engine behind
the (2+eps)-approximate densest-subgraph algorithm of Dhulipala et al.
Charikar's classic analysis: among the vertex sets seen while greedily
peeling minimum-degree vertices, the densest is a 2-approximation of
the maximum density rho* = max_S |E(S)|/|S|; batch peeling with the
(1+eps) slack relaxes the factor to 2(1+eps) while cutting the rounds
to O(log n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..machine.costmodel import CostModel


@dataclass(frozen=True)
class DensestResult:
    """The best peel prefix: vertices, density, and provenance."""

    vertices: np.ndarray
    density: float
    iterations: int
    approx_factor: float  # proven: density >= rho* / approx_factor

    @property
    def size(self) -> int:
        return self.vertices.size


def densest_subgraph(g: CSRGraph, eps: float = 0.1,
                     cost: CostModel | None = None) -> DensestResult:
    """Batch-peel and return the densest intermediate vertex set.

    Guarantee: the returned density is at least rho* / (2(1+eps)), where
    rho* is the maximum subgraph density of G.
    """
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    n = g.n
    cost = cost if cost is not None else CostModel()
    if n == 0:
        return DensestResult(vertices=np.empty(0, dtype=np.int64),
                             density=0.0, iterations=0,
                             approx_factor=2 * (1 + eps))
    D = g.degrees.copy()
    active = np.ones(n, dtype=bool)
    remaining = n
    edges = g.m
    best_density = edges / n
    best_mask = active.copy()
    iterations = 0

    with cost.phase("densest"):
        while remaining:
            iterations += 1
            threshold = (1.0 + eps) * (2.0 * edges / remaining)
            removable = active & (D <= threshold)
            cost.parallel_for(remaining)
            batch = np.flatnonzero(removable)
            if batch.size == 0:  # pragma: no cover - min <= avg always
                raise RuntimeError("no progress")
            active[batch] = False
            remaining -= batch.size
            seg, nbrs = g.batch_neighbors(batch)
            live_mask = active[nbrs]
            live = nbrs[live_mask]
            cost.scatter_decrement(nbrs.size)
            if live.size:
                np.subtract.at(D, live, 1)
            # Edges removed: those to still-active vertices plus the
            # batch-internal ones (each counted twice in the gather).
            internal2 = int((~live_mask & removable[nbrs]).sum())
            edges -= live.size + internal2 // 2
            if remaining:
                density = edges / remaining
                cost.reduce(remaining)
                if density > best_density:
                    best_density = density
                    best_mask = active.copy()
    return DensestResult(vertices=np.flatnonzero(best_mask).astype(np.int64),
                         density=float(best_density), iterations=iterations,
                         approx_factor=2 * (1 + eps))


def subgraph_density(g: CSRGraph, vertices: np.ndarray) -> float:
    """|E(S)| / |S| for a vertex subset (0.0 for the empty set)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return 0.0
    mask = np.zeros(g.n, dtype=bool)
    mask[vertices] = True
    seg, nbrs = g.batch_neighbors(vertices)
    internal = int(mask[nbrs].sum()) // 2
    return internal / vertices.size
