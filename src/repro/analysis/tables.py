"""Plain-text table rendering for benchmark and experiment reports."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(rows: Sequence[dict[str, Any]],
                 columns: Sequence[str] | None = None,
                 float_fmt: str = "{:.3g}") -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    cells = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                     for row in cells)
    return f"{header}\n{sep}\n{body}"


def format_markdown(rows: Sequence[dict[str, Any]],
                    columns: Sequence[str] | None = None,
                    float_fmt: str = "{:.3g}") -> str:
    """Render dict-rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    sep = "| " + " | ".join("---" for _ in columns) + " |"
    body = "\n".join(
        "| " + " | ".join(fmt(r.get(c, "")) for c in columns) + " |"
        for r in rows)
    return f"{header}\n{sep}\n{body}"
