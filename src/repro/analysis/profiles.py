"""Dolan-More performance profiles (paper Fig. 5).

A performance profile plots, for each algorithm, the cumulative
fraction of problem instances on which the algorithm's metric (color
count, run-time, ...) is within a factor tau of the best algorithm on
that instance.  The curve that reaches the top-left first wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProfileCurve:
    """One algorithm's cumulative distribution over performance ratios."""

    algorithm: str
    taus: np.ndarray       # sorted performance ratios (>= 1)
    fractions: np.ndarray  # fraction of instances solved within each tau

    def fraction_at(self, tau: float) -> float:
        """Fraction of instances where this algorithm is within tau of best."""
        idx = np.searchsorted(self.taus, tau, side="right")
        return float(self.fractions[idx - 1]) if idx > 0 else 0.0

    @property
    def area(self) -> float:
        """Area under the step curve over tau in [1, 2] — a scalar
        summary on a fixed grid so curves are comparable; higher is
        better (the curve of a quality leader sits above).
        """
        return self.area_up_to(2.0)

    def area_up_to(self, tau_max: float) -> float:
        """Integral of fraction_at(tau) for tau in [1, tau_max]."""
        if self.taus.size == 0 or tau_max <= 1.0:
            return 0.0
        knots = np.concatenate(([1.0],
                                self.taus[(self.taus > 1.0)
                                          & (self.taus < tau_max)],
                                [tau_max]))
        total = 0.0
        for lo, hi in zip(knots[:-1], knots[1:]):
            total += self.fraction_at(lo) * (hi - lo)
        return float(total)


def performance_profile(results: dict[str, dict[str, float]],
                        ) -> dict[str, ProfileCurve]:
    """Build profiles from ``results[algorithm][instance] = metric``.

    Lower metric is better (color counts, run-times).  Instances missing
    for an algorithm count as never-solved (ratio infinity).
    """
    algorithms = sorted(results)
    instances = sorted({i for per_alg in results.values() for i in per_alg})
    if not instances:
        return {a: ProfileCurve(a, np.empty(0), np.empty(0))
                for a in algorithms}

    best: dict[str, float] = {}
    for inst in instances:
        vals = [results[a][inst] for a in algorithms if inst in results[a]]
        if not vals:
            continue
        best[inst] = min(vals)

    curves: dict[str, ProfileCurve] = {}
    n_inst = len(instances)
    for a in algorithms:
        ratios = []
        for inst in instances:
            if inst in results[a] and best.get(inst, 0) > 0:
                ratios.append(results[a][inst] / best[inst])
            else:
                ratios.append(np.inf)
        r = np.sort(np.asarray(ratios, dtype=np.float64))
        fractions = np.arange(1, n_inst + 1, dtype=np.float64) / n_inst
        curves[a] = ProfileCurve(algorithm=a, taus=r, fractions=fractions)
    return curves


def profile_table(curves: dict[str, ProfileCurve],
                  taus: list[float] = (1.0, 1.1, 1.25, 1.5, 2.0),
                  ) -> list[dict[str, float | str]]:
    """Rows of {algorithm, tau=...: fraction} for text rendering."""
    rows = []
    for name in sorted(curves):
        row: dict[str, float | str] = {"algorithm": name}
        for t in taus:
            row[f"tau={t:g}"] = round(curves[name].fraction_at(t), 3)
        rows.append(row)
    return rows
