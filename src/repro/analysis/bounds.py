"""Theoretical bounds of Tables II and III, as evaluable formulas.

Each algorithm's proven guarantees — quality (number of colors), work,
and depth — are encoded as functions of the graph parameters (n, m,
Delta, d) and epsilon, so the benchmark harness can print
measured-vs-bound columns and the tests can assert that measured
quality never exceeds the proven bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GraphParams:
    """The parameters the paper's bounds are stated in."""

    n: int
    m: int
    max_degree: int
    degeneracy: int

    @property
    def log_n(self) -> float:
        return math.log2(max(self.n, 2))

    @property
    def log_d(self) -> float:
        return math.log2(max(self.degeneracy, 2))

    @property
    def log_delta(self) -> float:
        return math.log2(max(self.max_degree, 2))


def quality_bound(algorithm: str, params: GraphParams,
                  eps: float = 0.01) -> int:
    """The proven worst-case color count for ``algorithm`` (Table III).

    Returns the bound with the paper's ceilings applied:
    JP-ADG / DEC-ADG-ITR: ceil(2(1+eps)d) + 1; JP-ADG-M: 4d + 1;
    DEC-ADG: ceil((2+eps)d); DEC-ADG-M: ceil((4+eps)d); JP-SL /
    Greedy-SL: d + 1; everything else: Delta + 1.
    """
    d = params.degeneracy
    delta = params.max_degree
    table = {
        "JP-ADG": math.ceil(2 * (1 + eps) * d) + 1,
        "JP-ADG-O": math.ceil(2 * (1 + eps) * d) + 1,
        "JP-ADG-M": 4 * d + 1,
        "JP-ADG-M-O": 4 * d + 1,
        "DEC-ADG": math.ceil((2 + eps) * d),
        "DEC-ADG-M": math.ceil((4 + eps) * d),
        "DEC-ADG-ITR": math.ceil(2 * (1 + eps) * d) + 1,
        "DEC-ADG-ITR-M": 4 * d + 1,
        "JP-SL": d + 1,
        "Greedy-SL": d + 1,
    }
    if algorithm in table:
        return int(table[algorithm])
    return delta + 1


def adg_iteration_bound(n: int, eps: float) -> int:
    """Lemma 1: ADG performs at most ceil(log n / log(1+eps)) + 1 iterations."""
    if n <= 1:
        return 1
    if eps <= 0:
        return n  # no guarantee without slack; SL-like worst case
    return math.ceil(math.log(n) / math.log(1.0 + eps)) + 1


def adg_m_iteration_bound(n: int) -> int:
    """Lemma 14: ADG-M halves U each iteration -> ceil(log2 n) + 1."""
    if n <= 1:
        return 1
    return math.ceil(math.log2(n)) + 1


def adg_approx_factor(eps: float, variant: str = "avg") -> float:
    """The k of the partial k-approximate degeneracy order ADG outputs.

    Lemma 4: k = 2(1+eps) for the average variant; Lemma 15: k = 4 for
    the median variant.
    """
    if variant == "avg":
        return 2.0 * (1.0 + eps)
    if variant == "median":
        return 4.0
    raise ValueError(f"unknown variant {variant!r}")


def work_bound(algorithm: str, params: GraphParams, crew: bool = False) -> float:
    """Asymptotic work bound, as the dominating term's value (no constants).

    All the paper's algorithms are work-efficient — O(n + m) — except the
    CREW ADG variants, which pay O(m + n d) (Lemma 5).
    """
    nm = params.n + 2 * params.m
    if crew and algorithm in ("ADG", "JP-ADG", "DEC-ADG", "ADG-M"):
        return params.m * 2 + params.n * max(params.degeneracy, 1)
    return nm


def depth_bound(algorithm: str, params: GraphParams, eps: float = 0.01) -> float:
    """Asymptotic depth bound value (no constants), Table III formulas."""
    n, d = params.n, max(params.degeneracy, 1)
    log_n, log_d, log_delta = params.log_n, params.log_d, params.log_delta
    loglog_n = math.log2(max(params.log_n, 2))
    sqrt_m = math.sqrt(max(params.m, 1))
    delta = max(params.max_degree, 1)

    if algorithm in ("ADG", "ADG-M"):
        return log_n ** 2
    if algorithm in ("JP-ADG", "JP-ADG-M"):
        return (log_n ** 2
                + log_delta * (d * log_n + log_d * log_n ** 2 / loglog_n))
    if algorithm in ("DEC-ADG", "DEC-ADG-M"):
        return log_d * log_n ** 2
    if algorithm == "JP-R":
        return log_n + log_delta * min(sqrt_m, delta + log_delta * log_n / loglog_n)
    if algorithm == "JP-LLF":
        return log_n + log_delta * (min(delta, sqrt_m)
                                    + log_delta ** 2 * log_n / loglog_n)
    if algorithm == "JP-SLL":
        return log_delta * log_n + log_delta * (
            min(delta, sqrt_m) + log_delta ** 2 * log_n / loglog_n)
    if algorithm in ("JP-SL", "JP-FF", "Greedy-SL", "Greedy-FF", "Greedy-ID",
                     "Greedy-SD", "ID", "SD", "SL"):
        return float(n)  # Omega(n) worst cases / sequential
    if algorithm == "JP-LF":
        return float(delta ** 2)
    return float(n)  # unknown: no bound claimed


def sqrt_m_lower_bound_holds(params: GraphParams) -> bool:
    """Lemma 13: sqrt(m) >= d / 2 for every d-degenerate graph."""
    return math.sqrt(max(params.m, 0)) >= params.degeneracy / 2.0


# Formula strings for rendering Table II / Table III.
DEPTH_FORMULAS = {
    "ADG": "O(log^2 n)",
    "ADG-M": "O(log^2 n)",
    "SL": "O(n)",
    "SLL": "O(log Delta log n)",
    "ASL": "O(n)",
    "JP-ADG": "O(log^2 n + log Delta (d log n + log d log^2 n / loglog n))",
    "JP-ADG-M": "O(log^2 n + log Delta (d log n + log d log^2 n / loglog n))",
    "DEC-ADG": "O(log d log^2 n) w.h.p.",
    "DEC-ADG-M": "O(log d log^2 n) w.h.p.",
    "DEC-ADG-ITR": "O(I d log n)",
    "JP-R": "O(log n + log Delta min(sqrt m, Delta + log Delta log n/loglog n))",
    "JP-LLF": "O(log n + log Delta (min(Delta, sqrt m) + log^2 Delta log n/loglog n))",
    "JP-SLL": "O(log Delta log n + log Delta (min(Delta, sqrt m) + log^2 Delta log n/loglog n))",
    "JP-FF": "no general bound; Omega(n) for some graphs",
    "JP-LF": "no general bound; Omega(Delta^2) for some graphs",
    "JP-SL": "no general bound; Omega(n) for some graphs",
}

QUALITY_FORMULAS = {
    "JP-ADG": "2(1+eps)d + 1",
    "JP-ADG-M": "4d + 1",
    "DEC-ADG": "(2+eps)d",
    "DEC-ADG-M": "(4+eps)d",
    "DEC-ADG-ITR": "2(1+eps)d + 1",
    "JP-SL": "d + 1",
    "Greedy-SL": "d + 1",
}
