"""Analysis helpers: theoretical bounds, performance profiles, tables."""

from .bounds import (
    DEPTH_FORMULAS,
    QUALITY_FORMULAS,
    GraphParams,
    adg_approx_factor,
    adg_iteration_bound,
    adg_m_iteration_bound,
    depth_bound,
    quality_bound,
    sqrt_m_lower_bound_holds,
    work_bound,
)
from .profiles import ProfileCurve, performance_profile, profile_table
from .tables import format_markdown, format_table

__all__ = [
    "GraphParams", "quality_bound", "work_bound", "depth_bound",
    "adg_approx_factor", "adg_iteration_bound", "adg_m_iteration_bound",
    "sqrt_m_lower_bound_holds", "DEPTH_FORMULAS", "QUALITY_FORMULAS",
    "ProfileCurve", "performance_profile", "profile_table",
    "format_markdown", "format_table",
]
