"""Programmatic Table III: theory and measurement side by side.

Renders the reproduction's analog of the paper's algorithm-comparison
table: for each algorithm, its proven quality/depth/work formulas
(Table III columns), the measured values on a given graph, and the
boolean verdicts (within bound? work-efficient?).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coloring.registry import ALGORITHMS, color
from ..graphs.csr import CSRGraph
from ..graphs.properties import degeneracy
from .bounds import (
    DEPTH_FORMULAS,
    QUALITY_FORMULAS,
    GraphParams,
    depth_bound,
    quality_bound,
)

#: The paper's class taxonomy (Table III groupings).
CLASS_OF = {
    "Luby": 1, "GM": 1, "CR": 1, "ITR": 1, "ITR-ASL": 1, "ITRB": 1,
    "DEC-ADG": 1, "DEC-ADG-M": 1, "DEC-ADG-ITR": 1,
    "Greedy-FF": 2, "Greedy-R": 2, "Greedy-LF": 2, "Greedy-SL": 2,
    "Greedy-ID": 2, "Greedy-SD": 2,
    "JP-FF": 3, "JP-R": 3, "JP-LF": 3, "JP-LLF": 3, "JP-SL": 3,
    "JP-SLL": 3, "JP-ASL": 3, "JP-ADG": 3, "JP-ADG-M": 3, "JP-ADG-O": 3,
}

#: Algorithms introduced by the paper (ours) vs baselines.
OURS = {"JP-ADG", "JP-ADG-M", "JP-ADG-O", "DEC-ADG", "DEC-ADG-M",
        "DEC-ADG-ITR"}


@dataclass(frozen=True)
class ComparisonRow:
    """One algorithm's theory-vs-measured entry."""

    algorithm: str
    klass: int
    ours: bool
    quality_formula: str
    depth_formula: str
    measured_colors: int
    quality_bound: int
    within_bound: bool
    measured_work: int
    work_per_edge: float
    measured_depth: int

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm, "class": self.klass,
            "ours": self.ours, "quality_bound": self.quality_formula,
            "depth_bound": self.depth_formula,
            "colors": self.measured_colors, "bound": self.quality_bound,
            "within": self.within_bound, "work/(n+m)": self.work_per_edge,
            "depth": self.measured_depth,
        }


def build_comparison(g: CSRGraph, algorithms: list[str] | None = None,
                     eps: float = 0.01, seed: int = 0,
                     ) -> list[ComparisonRow]:
    """Run each algorithm on ``g`` and assemble its Table III row."""
    algorithms = algorithms or sorted(ALGORITHMS)
    d = degeneracy(g)
    params = GraphParams(n=g.n, m=g.m, max_degree=g.max_degree,
                         degeneracy=d)
    rows: list[ComparisonRow] = []
    for name in algorithms:
        kwargs: dict = {"seed": seed}
        alg_eps = eps
        if name in ("JP-ADG", "DEC-ADG-ITR", "JP-ADG-O"):
            kwargs["eps"] = eps
        if name in ("DEC-ADG", "DEC-ADG-M"):
            alg_eps = 6.0
        res = color(name, g, **kwargs)
        bound = quality_bound(name, params, alg_eps)
        rows.append(ComparisonRow(
            algorithm=name,
            klass=CLASS_OF.get(name, 0),
            ours=name in OURS,
            quality_formula=QUALITY_FORMULAS.get(name, "Delta + 1"),
            depth_formula=DEPTH_FORMULAS.get(name, "(no bound claimed)"),
            measured_colors=res.num_colors,
            quality_bound=bound,
            within_bound=res.num_colors <= bound,
            measured_work=res.total_work,
            work_per_edge=round(res.total_work / max(g.n + 2 * g.m, 1), 2),
            measured_depth=res.total_depth,
        ))
    rows.sort(key=lambda r: (r.klass, r.measured_colors))
    return rows


def verdict_summary(rows: list[ComparisonRow]) -> dict[str, bool]:
    """The paper's headline verdicts over a finished comparison."""
    ours = [r for r in rows if r.ours]
    others = [r for r in rows if not r.ours and r.klass != 2]
    best_ours = min((r.measured_colors for r in ours
                     if r.algorithm in ("JP-ADG", "DEC-ADG-ITR")),
                    default=0)
    return {
        "all_within_bounds": all(r.within_bound for r in rows),
        "ours_lead_or_tie_quality": best_ours <= min(
            (r.measured_colors for r in others), default=best_ours),
        "ours_work_efficient": all(r.work_per_edge < 40 for r in ours),
    }
