"""Command-line interface: ``python -m repro <command>``.

Commands
--------
color    Color a graph file (or a generated graph) with any algorithm;
         ``--delta SPEC`` recolors incrementally through a delta
         sequence instead.
serve    Run the JSON-lines TCP coloring service (color / verify /
         profile / apply_delta requests, digest-keyed result cache).
order    Compute a vertex ordering and report its quality metrics.
stats    Structural statistics of a graph.
suite    Run the Fig.-1-style harness over a dataset suite.
ingest   Stream an edge-list file (optionally gzipped) into the CSR
         binary cache: parallel chunked parse, out-of-core build.
profile  Trace one run and print per-phase / per-round breakdowns.
obs      Flight recorder: run the fixed perf matrix / check the ledger
         head against a committed baseline (the regression gate).

Every subcommand accepts ``--trace FILE`` to export a run trace
(``.jsonl`` writes the structured event log, any other extension writes
Chrome trace JSON, open at https://ui.perfetto.dev) and ``--ledger
FILE`` to append each run's flight-recorder record to a persistent
JSONL ledger.

Graphs are read from SNAP edge lists, METIS files, or NPZ (by
extension), generated on the fly with ``--gen``, or streamed through
the high-throughput ingest pipeline with ``--input`` (every subcommand
accepts it; repeat loads hit the digest-keyed binary cache).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis.tables import format_table
from .bench.harness import run_suite
from .coloring.registry import ALGORITHMS, color
from .coloring.verify import assert_valid_coloring
from .graphs import generators
from .graphs.csr import CSRGraph
from .graphs.io import load_npz, read_edge_list, read_metis
from .graphs.properties import degeneracy, stats
from .ordering.adg import approximation_quality
from .ordering.registry import ORDERINGS, get_ordering

GENERATORS = {
    "kronecker": lambda a, seed: generators.kronecker(
        scale=int(a[0]), edge_factor=int(a[1]) if len(a) > 1 else 16,
        seed=seed),
    "gnm": lambda a, seed: generators.gnm_random(int(a[0]), int(a[1]),
                                                 seed=seed),
    "chunglu": lambda a, seed: generators.chung_lu(int(a[0]), int(a[1]),
                                                   seed=seed),
    "grid": lambda a, seed: generators.grid_2d(int(a[0]), int(a[1])),
    "ba": lambda a, seed: generators.barabasi_albert(int(a[0]), int(a[1]),
                                                     seed=seed),
}


def make_tracer(args: argparse.Namespace):
    """A path-bound Tracer for --trace FILE, else None (env-resolved)."""
    if getattr(args, "trace", None):
        from .obs import Tracer
        return Tracer(path=args.trace)
    return None


def flush_trace(tracer) -> None:
    if tracer is not None:
        path = tracer.flush()
        if path:
            print(f"trace written to {path}", file=sys.stderr)


def load_graph(args: argparse.Namespace) -> CSRGraph:
    """Resolve --input / --graph / --gen into a CSRGraph."""
    if getattr(args, "input", None):
        from .graphs.ingest import ingest

        return ingest(args.input, backend=args.backend,
                      workers=args.workers)
    if args.gen:
        name, *params = args.gen.split(":")
        if name not in GENERATORS:
            raise SystemExit(f"unknown generator {name!r}; "
                             f"options: {sorted(GENERATORS)}")
        return GENERATORS[name](params[0].split(",") if params else [],
                                args.seed)
    if not args.graph:
        raise SystemExit("provide --input FILE, --graph FILE or --gen SPEC")
    path = args.graph
    if path.endswith(".npz"):
        return load_npz(path)
    if path.endswith(".graph") or path.endswith(".metis"):
        return read_metis(path)
    return read_edge_list(path)


def cmd_color(args: argparse.Namespace) -> int:
    if getattr(args, "delta", None):
        return _color_with_deltas(args)
    g = load_graph(args)
    kwargs: dict = {"seed": args.seed}
    if args.algorithm in ("JP-ADG", "DEC-ADG-ITR"):
        kwargs["eps"] = args.eps
    tracer = make_tracer(args)
    res = color(args.algorithm, g, backend=args.backend,
                workers=args.workers, trace=tracer, **kwargs)
    assert_valid_coloring(g, res.colors)
    summary = res.summary()
    summary["graph"] = g.name
    summary["degeneracy"] = degeneracy(g)
    if args.json:
        summary["phase_walls"] = {k: round(v, 6)
                                  for k, v in res.phase_walls.items()}
        if res.faults is not None:
            summary["faults"] = res.faults
        if res.dispatch is not None:
            summary["dispatch"] = res.dispatch
        if res.shards is not None:
            summary["shards"] = res.shards
        if res.resources is not None:
            summary["resources"] = res.resources
        print(json.dumps(summary))
    else:
        print(format_table([summary]))
    flush_trace(tracer)
    if args.output:
        import numpy as np
        np.savetxt(args.output, res.colors, fmt="%d")
        print(f"colors written to {args.output}", file=sys.stderr)
    return 0


def _color_with_deltas(args: argparse.Namespace) -> int:
    """``color --delta SPEC``: incremental recoloring through a delta
    sequence, one report row per delta plus a final verified summary."""
    from .coloring.incremental import INCREMENTAL_FAMILY, IncrementalColoring
    from .graphs.delta import parse_delta_spec

    if args.algorithm not in INCREMENTAL_FAMILY:
        raise SystemExit(f"--delta requires one of {INCREMENTAL_FAMILY}; "
                         f"got {args.algorithm!r}")
    g = load_graph(args)
    deltas = [parse_delta_spec(spec) for spec in args.delta]
    rows = []
    with IncrementalColoring(g, args.algorithm, eps=args.eps,
                             seed=args.seed, backend=args.backend,
                             workers=args.workers) as inc:
        for i, delta in enumerate(deltas):
            report = inc.apply_delta(delta)
            rows.append({"delta": i, "spec": args.delta[i], **report})
        final = inc.verify()
        assert_valid_coloring(inc.graph, inc.colors)
        summary = {"algorithm": args.algorithm, "graph": g.name,
                   "deltas": len(deltas), **final, **inc.stats}
        from .obs.ledger import resolve_ledger, service_record
        book = resolve_ledger(None)  # env seam: --ledger -> $REPRO_LEDGER
        if book.enabled:
            book.append(service_record("cli_delta", {
                "graph": g.name, "digest": inc.graph.content_digest,
                "algorithm": args.algorithm, "eps": args.eps,
                "n": inc.graph.n, "m": inc.graph.m, **summary}))
        if args.output:
            import numpy as np
            np.savetxt(args.output, inc.colors, fmt="%d")
            print(f"colors written to {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps({"deltas": rows, "summary": summary}))
    else:
        print(format_table(rows))
        print(format_table([summary]))
    return 0 if final["valid"] and final["within_bound"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .service.net import run_service

    return run_service(host=args.host, port=args.port,
                       workers=args.svc_workers,
                       backend=args.backend,
                       ctx_workers=args.workers,
                       cache_size=args.cache_size)


def cmd_order(args: argparse.Namespace) -> int:
    from .runtime import ExecutionContext

    g = load_graph(args)
    kwargs: dict = {"seed": args.seed}
    if args.ordering in ("ADG", "ADG-M"):
        kwargs["eps"] = args.eps
    tracer = make_tracer(args)
    with ExecutionContext(backend=args.backend, workers=args.workers,
                          trace=tracer) as ctx:
        o = get_ordering(args.ordering, g, ctx=ctx, **kwargs)
    d = degeneracy(g)
    row = {
        "ordering": o.name, "graph": g.name, "n": g.n, "m": g.m,
        "degeneracy": d, "levels": o.num_levels,
        "work": o.cost.work, "depth": o.cost.depth,
        "approx_factor": (round(approximation_quality(g, o) / max(d, 1), 3)
                          if o.levels is not None else "n/a"),
    }
    print(json.dumps(row) if args.json else format_table([row]))
    flush_trace(tracer)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    tracer = make_tracer(args)
    g = load_graph(args)
    if tracer is not None:
        with tracer.span("stats"):
            s = stats(g)
    else:
        s = stats(g)
    row = {"graph": s.name, "n": s.n, "m": s.m, "max_degree": s.max_degree,
           "min_degree": s.min_degree,
           "avg_degree": round(s.avg_degree, 3),
           "degeneracy": s.degeneracy,
           "d_over_sqrt_m": round(s.degeneracy_to_sqrt_m, 4)}
    print(json.dumps(row) if args.json else format_table([row]))
    flush_trace(tracer)
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate every paper table/figure into --outdir (no pytest)."""
    import os

    from .analysis.tables import format_markdown
    from .bench.datasets import dataset, suite
    from .bench.epsilon import epsilon_sweep
    from .bench.memory import memory_pressure
    from .bench.report import (
        epsilon_report,
        fig1_quality_report,
        fig1_runtime_report,
        fig5_profile_report,
        memory_report,
        scaling_report,
        table3_report,
    )
    from .bench.scaling import strong_scaling, weak_scaling
    from .coloring.registry import FIGURE1_SET

    outdir = args.outdir
    os.makedirs(outdir, exist_ok=True)

    def emit(name: str, title: str, body: str) -> None:
        path = os.path.join(outdir, f"{name}.md")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# {title}\n\n{body}\n")
        print(f"wrote {path}", file=sys.stderr)

    print("running the Fig. 1 suite ...", file=sys.stderr)
    tracer = make_tracer(args)  # --trace captures the Fig. 1 suite runs
    result = run_suite(suite("small"), algorithms=FIGURE1_SET,
                       eps=args.eps, seed=args.seed,
                       trace=tracer if tracer is not None else False)
    flush_trace(tracer)
    emit("fig1_runtime_small", "Fig. 1 run-times (smaller graphs)",
         fig1_runtime_report(result))
    emit("fig1_quality_small", "Fig. 1 quality (smaller graphs)",
         fig1_quality_report(result))
    emit("table3_algorithms", "Table III measured",
         table3_report(result))
    emit("fig5_quality_profile", "Fig. 5 quality profile",
         fig5_profile_report(result))

    print("running Fig. 2 scaling ...", file=sys.stderr)
    strong = strong_scaling(dataset("h_bai"),
                            ["JP-ADG", "JP-R", "JP-LLF", "JP-SL", "ITR",
                             "DEC-ADG-ITR"], seed=args.seed, eps=args.eps)
    emit("fig2_strong_scaling", "Fig. 2 strong scaling",
         scaling_report(strong))
    weak = weak_scaling(["JP-ADG", "JP-R", "ITR"], scale=12,
                        seed=args.seed, eps=args.eps)
    emit("fig2_weak_scaling", "Fig. 2 weak scaling", scaling_report(weak))

    print("running Fig. 3 epsilon sweep ...", file=sys.stderr)
    eps_points = epsilon_sweep(dataset("h_bai"), seed=args.seed)
    eps_points += epsilon_sweep(dataset("v_usa"), seed=args.seed)
    emit("fig3_epsilon", "Fig. 3 epsilon sweep", epsilon_report(eps_points))

    print("running Fig. 4 memory pressure ...", file=sys.stderr)
    mem_points = memory_pressure(
        dataset("h_bai"),
        ["ITR", "ITR-ASL", "DEC-ADG-ITR", "JP-ADG", "JP-R", "JP-SL"],
        seed=args.seed, eps=args.eps)
    emit("fig4_memory", "Fig. 4 memory pressure", memory_report(mem_points))

    summary = [{"experiment": name} for name in
               ["fig1_runtime_small", "fig1_quality_small",
                "table3_algorithms", "fig5_quality_profile",
                "fig2_strong_scaling", "fig2_weak_scaling",
                "fig3_epsilon", "fig4_memory"]]
    emit("index", "Regenerated experiments", format_markdown(summary))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .bench.datasets import suite

    graphs = suite(args.suite)
    algorithms = args.algorithms.split(",") if args.algorithms else None
    tracer = make_tracer(args)
    result = run_suite(graphs, algorithms=algorithms, eps=args.eps,
                       seed=args.seed, backend=args.backend,
                       workers=args.workers,
                       trace=tracer if tracer is not None else False)
    rows = result.as_rows()
    if args.json:
        print(json.dumps(rows))
    else:
        cols = ["graph", "algorithm", "colors", "quality_bound", "work",
                "depth", "sim_time_32", "backend", "workers"]
        print(format_table(rows, columns=cols))
    flush_trace(tracer)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Trace one run and print its per-phase / per-round breakdown."""
    import os

    from .obs import (
        Tracer,
        dispatch_breakdown,
        fault_breakdown,
        imbalance_breakdown,
        phase_breakdown,
        resource_breakdown,
        round_breakdown,
        shard_breakdown,
    )

    g = load_graph(args)
    kwargs: dict = {"seed": args.seed}
    if args.algorithm in ("JP-ADG", "DEC-ADG-ITR"):
        kwargs["eps"] = args.eps
    tracer = Tracer(path=args.trace or None)
    # A profile is explicitly about what the run costs, so resource
    # telemetry defaults on here (still overridable via the env).
    had_res = "REPRO_RESOURCES" in os.environ
    if not had_res:
        os.environ["REPRO_RESOURCES"] = "1"
    try:
        res = color(args.algorithm, g, backend=args.backend,
                    workers=args.workers, trace=tracer, **kwargs)
    finally:
        if not had_res:
            os.environ.pop("REPRO_RESOURCES", None)
    assert_valid_coloring(g, res.colors)

    summary = res.summary()
    summary["graph"] = g.name
    phases = phase_breakdown(res, tracer)
    rounds = round_breakdown(tracer)
    imbalance = imbalance_breakdown(tracer)
    faults = fault_breakdown(res)
    dispatch = dispatch_breakdown(res)
    shards = shard_breakdown(res)
    resources = resource_breakdown(res)
    if args.json:
        print(json.dumps({"summary": summary, "phases": phases,
                          "rounds": rounds, "imbalance": imbalance,
                          "faults": faults, "dispatch": dispatch,
                          "shards": shards, "resources": resources}))
    else:
        print(format_table([summary]))
        print("\n== per-phase breakdown (exclusive wall) ==")
        print(format_table(phases))
        if rounds:
            print("\n== per-round metrics ==")
            print(format_table(rounds))
        if imbalance:
            print("\n== chunked rounds (threaded imbalance) ==")
            print(format_table(imbalance))
        if faults:
            print("\n== fault recovery ==")
            print(format_table(faults))
        if dispatch:
            print("\n== adaptive dispatch ==")
            print(format_table(dispatch))
        if shards:
            print("\n== sharding layer ==")
            print(format_table(shards))
        if resources:
            print("\n== resources (peak RSS / CPU per process) ==")
            print(format_table(resources))
    flush_trace(tracer)
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Stream an edge-list file into the CSR cache; print a load report."""
    from .graphs.ingest import ingest_report
    from .obs.resources import ResourceSampler, current_rss_kb
    from .runtime import ExecutionContext

    if not args.input:
        raise SystemExit("ingest needs --input FILE")
    tracer = make_tracer(args)
    base_kb = current_rss_kb()
    sampler = ResourceSampler(tracer=tracer).start()
    try:
        with ExecutionContext(backend=args.backend, workers=args.workers,
                              trace=tracer) as ctx:
            g, report = ingest_report(
                args.input, ctx=ctx, comments=args.comments,
                cache=not args.no_cache, cache_dir=args.cache_dir,
                spill_dir=args.spill_dir, force=args.force,
                chunk_bytes=args.chunk_bytes, parser=args.parser)
    finally:
        sampler.stop()
    res = sampler.digest()
    report["rss_baseline_kb"] = base_kb
    report["rss_peak_kb"] = res["peak_rss_kb"]
    report["rss_delta_kb"] = max(0, res["peak_rss_kb"] - base_kb)
    report["csr_bytes"] = int(g.indptr.nbytes + g.indices.nbytes)
    from .obs.ledger import resolve_ledger, service_record
    book = resolve_ledger(None)  # env seam: --ledger -> $REPRO_LEDGER
    if book.enabled:
        book.append(service_record("ingest", {
            k: report[k] for k in sorted(report) if k != "phase_walls"}))
    if args.json:
        print(json.dumps(report))
    else:
        cols = {"graph": g.name, "n": report["n"], "m": report["m"],
                "digest": report["digest"],
                "cached": report["cached"] or "no",
                "wall_s": round(report["wall_s"], 4),
                "mb_per_s": round(report["mb_per_s"], 1),
                "rss_delta_kb": report["rss_delta_kb"]}
        print(format_table([cols]))
    flush_trace(tracer)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Flight-recorder commands: run the perf matrix / gate the ledger."""
    from .obs.regress import check_command, run_matrix

    if args.obs_command == "matrix":
        n = run_matrix(args.ledger_path, repeats=args.repeats,
                       seed=args.seed)
        print(f"{n} run(s) appended to {args.ledger_path}")
        return 0
    only = [m.strip() for m in args.only.split(",")] if args.only else None
    return check_command(args.ledger_path, args.baseline, k=args.k,
                         only=only, update=args.update)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel graph coloring with guarantees "
                    "(Besta et al., SC 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--graph", help="SNAP/METIS/NPZ graph file")
        p.add_argument("--gen", help="generator spec, e.g. kronecker:12,8 "
                                     "| gnm:1000,5000 | grid:30,30")
        p.add_argument("--input", metavar="FILE",
                       help="edge-list file (optionally .gz) loaded "
                            "through the streaming ingest pipeline "
                            "(parallel parse + digest-keyed binary "
                            "cache); takes precedence over --graph/--gen")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--eps", type=float, default=0.01)
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")
        p.add_argument("--backend",
                       choices=["serial", "threaded", "process"],
                       default=None,
                       help="execution backend (default: $REPRO_BACKEND "
                            "or serial); colors are backend-independent")
        p.add_argument("--workers", type=int, default=None,
                       help="threaded/process-backend worker count "
                            "(default: $REPRO_WORKERS or CPU count)")
        p.add_argument("--trace", metavar="FILE",
                       help="export a run trace: .jsonl for the event "
                            "log, anything else for Chrome trace JSON "
                            "(open in Perfetto)")
        p.add_argument("--ledger", metavar="FILE",
                       help="append one flight-recorder record per run "
                            "to this JSONL ledger (same grammar as "
                            "$REPRO_LEDGER: a path, or 1/on for "
                            "results/ledger.jsonl); also enables "
                            "resource telemetry for the run")
        p.add_argument("--faults", metavar="SPEC",
                       help="deterministic fault plan for chaos runs, "
                            "e.g. 'error@3.0;kill@8.*;delay%%0.01:0.005;"
                            "seed=7' (same grammar as $REPRO_FAULTS); "
                            "results are bit-identical to a fault-free "
                            "run")
        p.add_argument("--adaptive",
                       choices=["on", "off", "inline", "parallel"],
                       default=None,
                       help="adaptive round dispatch (default: "
                            "$REPRO_ADAPTIVE or on): inline rounds too "
                            "small to amortize their dispatch overhead; "
                            "colors are identical in every mode")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run DEC-family engines through the sharding "
                            "layer with N per-shard engines (default: "
                            "$REPRO_SHARDS or off; 0 disables); with the "
                            "process backend each shard runs in its own "
                            "worker over shared-memory segments")
        p.add_argument("--kernel-tier", dest="kernel_tier",
                       choices=["auto", "numpy", "numba"],
                       default=None,
                       help="hot-trio kernel implementation (default: "
                            "$REPRO_KERNEL_TIER or auto): auto uses the "
                            "compiled numba tier when importable and "
                            "falls back to numpy silently; colors are "
                            "bit-identical across tiers")

    p_color = sub.add_parser("color", help="run a coloring algorithm")
    common(p_color)
    p_color.add_argument("--algorithm", default="JP-ADG",
                         choices=sorted(ALGORITHMS))
    p_color.add_argument("--output", help="write per-vertex colors here")
    p_color.add_argument("--delta", action="append", metavar="SPEC",
                         help="apply a graph delta and recolor "
                              "incrementally (repeatable; DEC-family "
                              "algorithms only); grammar: "
                              "'add:u-v,...;del:u-v;addv:N;delv:v,...'")
    p_color.set_defaults(fn=cmd_color)

    p_order = sub.add_parser("order", help="compute a vertex ordering")
    common(p_order)
    p_order.add_argument("--ordering", default="ADG",
                         choices=sorted(ORDERINGS))
    p_order.set_defaults(fn=cmd_order)

    p_stats = sub.add_parser("stats", help="graph statistics")
    common(p_stats)
    p_stats.set_defaults(fn=cmd_stats)

    p_suite = sub.add_parser("suite", help="run the harness over a suite")
    common(p_suite)
    p_suite.add_argument("--suite", default="small",
                         choices=["small", "large", "extra", "real",
                                  "all"])
    p_suite.add_argument("--algorithms",
                         help="comma-separated algorithm names")
    p_suite.set_defaults(fn=cmd_suite)

    p_profile = sub.add_parser(
        "profile", help="trace one run; print per-phase and per-round "
                        "breakdowns")
    common(p_profile)
    p_profile.add_argument("--algorithm", default="JP-ADG",
                           choices=sorted(ALGORITHMS))
    p_profile.set_defaults(fn=cmd_profile)

    p_ingest = sub.add_parser(
        "ingest", help="stream an edge-list file into the CSR binary "
                       "cache (parallel parse, out-of-core build)")
    common(p_ingest)
    p_ingest.add_argument("--comments", default="#",
                          help="comment-line prefix (default '#')")
    p_ingest.add_argument("--no-cache", action="store_true",
                          help="skip the digest-keyed binary cache")
    p_ingest.add_argument("--force", action="store_true",
                          help="re-parse even when a cache entry matches")
    p_ingest.add_argument("--cache-dir", dest="cache_dir",
                          help="cache directory (default: "
                               "$REPRO_INGEST_CACHE or "
                               "<file's dir>/.repro_ingest)")
    p_ingest.add_argument("--spill-dir", dest="spill_dir",
                          help="directory for out-of-core spill files "
                               "(default: the system temp dir)")
    p_ingest.add_argument("--chunk-bytes", dest="chunk_bytes", type=int,
                          default=2 << 20,
                          help="parse-range size in bytes (default 2MiB)")
    p_ingest.add_argument("--parser",
                          choices=["auto", "c", "numpy", "python"],
                          default=None,
                          help="tokenizer tier (default: "
                               "$REPRO_INGEST_PARSER or auto)")
    p_ingest.set_defaults(fn=cmd_ingest)

    p_serve = sub.add_parser(
        "serve", help="run the JSON-lines TCP coloring service")
    common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--svc-workers", dest="svc_workers", type=int,
                         default=2,
                         help="concurrent request workers (each borrows "
                              "a long-lived execution context)")
    p_serve.add_argument("--cache-size", dest="cache_size", type=int,
                         default=128,
                         help="digest-keyed result cache capacity")
    p_serve.set_defaults(fn=cmd_serve)

    p_repro = sub.add_parser(
        "reproduce", help="regenerate every paper table/figure")
    common(p_repro)
    p_repro.add_argument("--outdir", default="results",
                         help="directory for the regenerated tables")
    p_repro.set_defaults(fn=cmd_reproduce)

    from .obs.regress import DEFAULT_BASELINE_PATH, DEFAULT_LEDGER_PATH

    p_obs = sub.add_parser(
        "obs", help="flight recorder: perf matrix + regression gate")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_check = obs_sub.add_parser(
        "check", help="compare the ledger head against a baseline; "
                      "exit 1 on regression")
    p_check.add_argument("--ledger", dest="ledger_path",
                         default=DEFAULT_LEDGER_PATH, metavar="FILE",
                         help="ledger to read (default: "
                              f"{DEFAULT_LEDGER_PATH})")
    p_check.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                         metavar="FILE",
                         help="baseline to compare against (default: "
                              f"{DEFAULT_BASELINE_PATH})")
    p_check.add_argument("--k", type=int, default=None,
                         help="aggregate the last k records per cell "
                              "(default: the baseline's k)")
    p_check.add_argument("--only", metavar="M1,M2",
                         help="restrict the gate to these metrics, "
                              "e.g. colors,valid,work (machine-"
                              "independent quality gate)")
    p_check.add_argument("--update", action="store_true",
                         help="write a fresh baseline from the ledger "
                              "head instead of checking")
    p_check.set_defaults(fn=cmd_obs)
    p_matrix = obs_sub.add_parser(
        "matrix", help="color the fixed perf matrix, appending one "
                       "ledger record per run")
    p_matrix.add_argument("--ledger", dest="ledger_path",
                          default=DEFAULT_LEDGER_PATH, metavar="FILE")
    p_matrix.add_argument("--repeats", type=int, default=3)
    p_matrix.add_argument("--seed", type=int, default=0)
    p_matrix.set_defaults(fn=cmd_obs)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The runtime reads $REPRO_FAULTS / $REPRO_ADAPTIVE wherever a
    # context is built (including child contexts and the bench
    # harness), so the env vars are the one seam that covers every
    # subcommand; restored afterwards so in-process callers (tests)
    # are not polluted.
    import os
    saved: dict[str, str | None] = {}
    for flag, env in (("faults", "REPRO_FAULTS"),
                      ("adaptive", "REPRO_ADAPTIVE"),
                      ("shards", "REPRO_SHARDS"),
                      ("kernel_tier", "REPRO_KERNEL_TIER"),
                      ("ledger", "REPRO_LEDGER")):
        value = getattr(args, flag, None)
        # --shards 0 must override an ambient $REPRO_SHARDS (it means
        # "off"), so integers test against None rather than falsiness.
        if value or (value is not None and flag == "shards"):
            saved[env] = os.environ.get(env)
            os.environ[env] = str(value)
    # --trace binds an explicit Tracer as the run's single sink; an
    # ambient $REPRO_TRACE would make every *other* context built along
    # the way bind its own tracer to that path and clobber the flushes,
    # so it is cleared for the command (and restored for in-process
    # callers, i.e. tests).
    if getattr(args, "trace", None) and "REPRO_TRACE" in os.environ:
        saved["REPRO_TRACE"] = os.environ.pop("REPRO_TRACE")
    try:
        # Resolve the kernel tier up front so even context-less engines
        # (GM, Greedy) run under the requested tier, and an explicit
        # --kernel-tier numba without numba fails loudly before any
        # work starts.
        from .primitives.tiers import resolve_kernel_tier, set_kernel_tier
        set_kernel_tier(resolve_kernel_tier(None))
        return args.fn(args)
    finally:
        for env, old in saved.items():
            if old is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = old


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
