"""Adaptive round dispatch: inline small rounds, parallelize big ones.

BENCH_backends.json documents the inversion this module removes: on
small graphs every JP/ADG/SIM-COL round pays a fixed dispatch cost
(future submission, spec marshalling, wave bookkeeping) that dwarfs the
round's actual kernel work, so the parallel backends run *slower* than
serial.  The fix is a per-round break-even decision inside
:meth:`ExecutionContext.map_chunks`: estimate what dispatching would
save, compare against what it costs, and run the round inline on the
coordinator when parallelism cannot pay for itself.

The break-even model
--------------------
A round of ``C`` chunks carrying ``U`` work units (item count, or the
engine's degree weights when it passes them) is predicted to spend
``unit_s * U / C`` kernel seconds per chunk.  Only that in-kernel time
parallelizes (the per-chunk Python/NumPy fixed overhead holds the GIL
on the threaded backend and is paid per chunk either way), so with
``p = min(workers, C, cpu_count)`` effective lanes the most a dispatch
can save is::

    saving = unit_s * (U / C) * (1 - 1/p)

against a per-chunk dispatch + combine cost ``dispatch_s[backend]``.
The round dispatches only when ``saving > MARGIN * dispatch_s`` —
``MARGIN`` (2x) absorbs the optimism of both estimates: the no-op
calibration is a lower bound on real dispatch cost (no result
marshalling, no GIL interference), and ``p`` assumes perfect overlap.

Both model inputs are online EWMAs seeded by one-shot calibration:

- ``unit_s`` — kernel seconds per work unit, per kernel name (a
  ``jp.wave`` unit is much heavier than an ``adg.select`` unit), with a
  global fallback for kernels not yet observed.  Seeded by timing one
  representative segmented gather; updated only from chunks large
  enough (:data:`UNIT_FLOOR`) that per-call fixed overhead does not
  pollute the per-unit slope.
- ``dispatch_s[backend]`` — per-chunk dispatch + combine seconds.
  Seeded by pushing a wave of no-op tasks through the real pool
  (threaded always; process only when the pool already exists — the
  estimator never spins up a process pool just to measure it, it uses
  a conservative static seed until real dispatches provide data), then
  updated from every dispatched round's measured overhead
  (``round_wall - kernel_wall / p``).  Floored (:data:`DISPATCH_FLOOR`)
  because a no-op measurement can only undershoot.

The decision changes *scheduling only*: chunk boundaries, combine
order, and fault-plan coordinates (round, chunk, attempt) are identical
whether a round is inlined or dispatched, which is what keeps colors,
rounds, and the cost/memory books bit-identical across every
``$REPRO_ADAPTIVE`` mode (see DESIGN.md).
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..primitives.kernels import multi_slice_gather

#: Recognized $REPRO_ADAPTIVE values. ``on``/``off`` switch the
#: estimator; ``inline``/``parallel`` force every eligible round's
#: decision one way (for tests and A/B benchmarks).
ADAPTIVE_MODES = ("on", "off", "inline", "parallel")

#: Dispatch must promise at least this multiple of the estimated
#: per-chunk overhead before a round leaves the coordinator.
MARGIN = 2.0

#: EWMA weight of the newest observation.
ALPHA = 0.25

#: Minimum chunk size (work units) for unit_s updates: below this the
#: per-call fixed overhead dominates and would corrupt the slope.
UNIT_FLOOR = 2048

#: Per-backend floors (seconds/chunk) under the calibrated dispatch
#: cost — no-op calibration is a lower bound on the real thing.
DISPATCH_FLOOR = {"threaded": 2e-5, "process": 2e-4}

#: Static dispatch seed used when calibration is not possible (process
#: backend before any pool exists): deliberately conservative, real
#: dispatches refine it immediately.
STATIC_SEED = {"threaded": 5e-5, "process": 5e-4}

#: Work units for the one-shot unit_s calibration gather.
_CAL_UNITS = 1 << 16


def noop_task() -> None:
    """Module-level no-op shipped through a pool to time its round trip
    (module-level so the process backend can pickle it)."""
    return None


def default_adaptive() -> str:
    """Adaptive mode: $REPRO_ADAPTIVE if set, else ``'on'``.

    Adaptive dispatch never changes results (only which side of the
    pool a round runs on), so it defaults on; ``off`` restores the
    always-dispatch behavior, ``inline``/``parallel`` force the
    decision for tests.
    """
    env = os.environ.get("REPRO_ADAPTIVE", "").strip().lower()
    if not env:
        return "on"
    if env in ("0", "off", "false", "no"):
        return "off"
    if env in ("1", "on", "true", "yes"):
        return "on"
    if env in ADAPTIVE_MODES:
        return env
    raise ValueError(f"$REPRO_ADAPTIVE must be one of {ADAPTIVE_MODES} "
                     f"(or a boolean flag), got {env!r}")


def resolve_adaptive(adaptive) -> str:
    """Normalize an ``adaptive=`` argument to one of ADAPTIVE_MODES."""
    if adaptive is None:
        return default_adaptive()
    if adaptive is True:
        return "on"
    if adaptive is False:
        return "off"
    mode = str(adaptive).strip().lower()
    if mode not in ADAPTIVE_MODES:
        raise ValueError(f"adaptive must be one of {ADAPTIVE_MODES}, "
                         f"got {adaptive!r}")
    return mode


class DispatchEstimator:
    """Online break-even model deciding inline vs. parallel per round.

    One instance lives on the run's pool-host context and is shared by
    every child context, so the ordering phase's observations inform
    the coloring phase's decisions.
    """

    def __init__(self, alpha: float = ALPHA, margin: float = MARGIN):
        self.alpha = alpha
        self.margin = margin
        self.unit_s: dict = {}        # kernel name -> EWMA sec/unit
        self.unit_s_global: float | None = None
        self.dispatch_s: dict = {}    # backend -> EWMA sec/chunk
        self.seeded: dict = {}        # backend -> "calibrated"|"static"
        self.decisions = {"inline": 0, "parallel": 0}

    # -- seeding -------------------------------------------------------------

    def seed_unit(self) -> None:
        """One-shot unit_s seed: time a representative segmented gather
        (the shape every kernel in this library is built from)."""
        if self.unit_s_global is not None:
            return
        data = np.arange(_CAL_UNITS, dtype=np.int64)
        starts = np.arange(0, _CAL_UNITS, 64, dtype=np.int64)
        counts = np.full(starts.size, 64, dtype=np.int64)
        t0 = time.perf_counter()
        multi_slice_gather(data, starts, counts)
        self.unit_s_global = max(
            (time.perf_counter() - t0) / _CAL_UNITS, 1e-10)

    def seed_dispatch(self, backend: str, pool=None, tasks: int = 16) -> None:
        """One-shot dispatch_s seed for ``backend``.

        With a live ``pool``, round-trip ``tasks`` no-ops through it
        and average; without one, fall back to the conservative static
        seed (never spin up a pool just to measure it).
        """
        if backend in self.dispatch_s:
            return
        if pool is None:
            self.dispatch_s[backend] = STATIC_SEED.get(backend, 5e-4)
            self.seeded[backend] = "static"
            return
        t0 = time.perf_counter()
        futs = [pool.submit(noop_task) for _ in range(tasks)]
        for f in futs:
            f.result()
        per_chunk = (time.perf_counter() - t0) / tasks
        floor = DISPATCH_FLOOR.get(backend, 2e-5)
        self.dispatch_s[backend] = max(per_chunk, floor)
        self.seeded[backend] = "calibrated"

    # -- model ---------------------------------------------------------------

    def _unit(self, key) -> float:
        got = self.unit_s.get(key)
        if got is not None:
            return got
        return self.unit_s_global if self.unit_s_global is not None else 1e-8

    def should_inline(self, backend: str, key, units: float,
                      chunks: int, p_eff: int) -> bool:
        """The break-even test (see module docstring)."""
        if p_eff <= 1:
            return True
        saving = self._unit(key) * (units / chunks) * (1.0 - 1.0 / p_eff)
        overhead = self.dispatch_s.get(backend, STATIC_SEED.get(backend, 5e-4))
        return saving <= self.margin * overhead

    def observe_round(self, backend: str, key, chunks: int, units: float,
                      round_s: float, kernel_s: float, measured: int,
                      inline: bool, p_eff: int) -> None:
        """Feed one finished round back into the EWMAs.

        ``kernel_s`` is the sum of in-kernel chunk walls over
        ``measured`` chunk executions; dispatched rounds additionally
        refine the backend's per-chunk overhead from
        ``round_s - kernel_s / p_eff`` (the wall the pool added on top
        of perfectly-overlapped kernel time).
        """
        a = self.alpha
        if measured and units > 0 and units / chunks >= UNIT_FLOOR:
            per_unit = kernel_s / units
            prev = self.unit_s.get(key)
            self.unit_s[key] = per_unit if prev is None \
                else (1 - a) * prev + a * per_unit
            prevg = self.unit_s_global
            self.unit_s_global = per_unit if prevg is None \
                else (1 - a) * prevg + a * per_unit
        if not inline and measured:
            overhead = max(0.0, round_s - kernel_s / max(1, p_eff))
            per_chunk = max(overhead / chunks,
                            DISPATCH_FLOOR.get(backend, 2e-5))
            prev = self.dispatch_s.get(backend)
            self.dispatch_s[backend] = per_chunk if prev is None \
                else (1 - a) * prev + a * per_chunk

    # -- reporting -----------------------------------------------------------

    def record(self) -> dict:
        """JSON-friendly digest for ``ColoringResult.dispatch``."""
        return {
            "decisions": dict(self.decisions),
            "unit_s": {str(k): float(v) for k, v in
                       sorted(self.unit_s.items())},
            "unit_s_global": self.unit_s_global,
            "dispatch_s": {k: float(v) for k, v in
                           sorted(self.dispatch_s.items())},
            "seeded": dict(self.seeded),
            "margin": self.margin,
        }


def effective_parallelism(workers: int, chunks: int) -> int:
    """Lanes a dispatch can realistically use: bounded by the worker
    count, the chunk count, and the machine's CPU count (a 4-worker
    pool on one core overlaps nothing)."""
    return max(1, min(workers, chunks, os.cpu_count() or 1))
