"""Module-level round kernels + the picklable kernel-descriptor protocol.

The process backend cannot ship closures to workers, so every engine
round is expressed as a *kernel*: a module-level function

    kernel(lo, hi, a, **scalars) -> chunk result

where ``a`` maps short logical array names to NumPy arrays.  Engines
wrap one round as a :class:`Kernel` descriptor (kernel name + namespace
+ the arrays + picklable scalars) and hand it to
:meth:`ExecutionContext.map_chunks`:

- **serial / threaded** — the descriptor is simply *called*: the
  engine's own arrays are passed by reference, exactly the old closure
  fast path;
- **process** — the context registers each array in the run's
  :class:`~repro.runtime.shm.SharedArena` (zero-copy when the engine
  already holds the arena's view, one memcpy otherwise) and ships only
  ``(kernel name, array specs, scalars, lo, hi)`` to the persistent
  worker pool, which rebuilds zero-copy views and calls the same
  function.

One function per round on every backend is what makes the bit-identical
contract easy to keep: there is no second implementation to drift.
Kernels never mutate shared arrays — they return chunk results and the
coordinator combines them in chunk order.  That purity is also what the
fault layer (:mod:`repro.runtime.faults`) leans on: a kernel chunk can
be retried after a failure, re-dispatched after a worker death, or
re-run on a degraded backend, and it recomputes exactly the same result
— so recovery never perturbs colors, rounds, or the accounting books.
Any new kernel added to :data:`KERNELS` must keep this property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..primitives.kernels import (
    grouped_mex,
    multi_slice_gather,
    segment_any,
    segment_ids,
)


@dataclass(frozen=True)
class Kernel:
    """A picklable description of one round's per-chunk work.

    ``ns`` namespaces the arrays in the shared arena (``f"{ns}:{key}"``)
    so two engines sharing one run (an ADG ordering inside a JP run)
    never collide.  ``scalars`` must be picklable plain values.

    Calling the descriptor runs the kernel in-process on the arrays as
    given — the serial/threaded fast path.
    """

    name: str
    ns: str
    arrays: dict = field(default_factory=dict)
    scalars: dict = field(default_factory=dict)

    def __call__(self, lo: int, hi: int):
        return KERNELS[self.name](lo, hi, self.arrays, **self.scalars)


def _batch_neighbors(indptr: np.ndarray, indices: np.ndarray,
                     batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR batch-neighborhood gather (same as CSRGraph.batch_neighbors,
    usable where only the raw arrays travel to the worker)."""
    counts = (indptr[batch + 1] - indptr[batch]).astype(np.int64)
    nbrs = multi_slice_gather(indices, indptr[batch], counts)
    return segment_ids(counts), nbrs


# -- JP ----------------------------------------------------------------------

def jp_wave(lo: int, hi: int, a: dict):
    """GetColor for one chunk of the wave frontier (Alg. 3 lines 25-28)."""
    part = a["frontier"][lo:hi]
    ranks, colors = a["ranks"], a["colors"]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part)
    is_pred = ranks[nbrs] > ranks[part[seg]]
    chunk_colors = grouped_mex(seg[is_pred], colors[nbrs[is_pred]], part.size)
    wave_deg = int(np.bincount(seg, minlength=part.size).max()) \
        if nbrs.size else 0
    return part, chunk_colors, nbrs[~is_pred], nbrs.size, wave_deg


# -- ADG ---------------------------------------------------------------------

def adg_select(lo: int, hi: int, a: dict, *, threshold: float):
    """Batch selection: active vertices at or below the degree threshold."""
    return np.flatnonzero(a["active"][lo:hi] &
                          (a["D"][lo:hi] <= threshold)) + lo


def adg_push(lo: int, hi: int, a: dict, *, compute_ranks: bool):
    """Push UPDATE (Alg. 1), optionally fused with PRIORITIZE (Alg. 6)."""
    part = a["batch"][lo:hi]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part)
    live_nbr = a["active"][nbrs]
    preds = None
    if compute_ranks:
        # UPDATEandPRIORITIZE (Alg. 6): a neighbor removed *after* v —
        # still active, or later in the sorted batch — is a DAG
        # predecessor of v.
        owner = part[seg]
        is_pred = live_nbr | (a["r_mask"][nbrs] &
                              (a["explicit"][nbrs] > a["explicit"][owner]))
        preds = owner[is_pred]
    return nbrs[live_nbr], nbrs.size, preds


def adg_pull(lo: int, hi: int, a: dict):
    """Pull UPDATE (Alg. 2): per-vertex Count(N_U(v) cap R)."""
    part = a["live"][lo:hi]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part)
    in_r = a["r_mask"][nbrs].astype(np.int64)
    dec = np.zeros(part.size, dtype=np.int64)
    np.add.at(dec, seg, in_r)
    return dec, nbrs.size


# -- SIM-COL -----------------------------------------------------------------

def simcol_trial(lo: int, hi: int, a: dict):
    """Trial evaluation (Alg. 5): reject equal active-neighbor draws
    and draws forbidden by the B_v bitmap."""
    mine = a["active"][lo:hi]
    colors, still = a["colors"], a["still"]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], mine)
    same = (colors[nbrs] == colors[mine[seg]]) & still[nbrs]
    clash = segment_any(same, seg, mine.size)
    clash |= a["forbidden"][mine, colors[mine]]
    md = int(np.bincount(seg, minlength=mine.size).max()) if nbrs.size else 0
    return clash, seg, nbrs, md


# -- DEC-ADG -----------------------------------------------------------------

def dec_constraints(lo: int, hi: int, a: dict, *, level: int):
    """Per-partition gather: deg_l counts and higher-partition colors."""
    part = a["verts"][lo:hi]
    levels = a["levels"]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part)
    cg = np.zeros(part.size, dtype=np.int64)
    np.add.at(cg, seg[levels[nbrs] >= level], 1)
    higher = levels[nbrs] > level
    return cg, seg[higher] + lo, a["colors"][nbrs[higher]], nbrs.size


# -- DEC-ADG-ITR -------------------------------------------------------------

def itr_choose(lo: int, hi: int, a: dict):
    """Smallest non-forbidden color: first False in each bitmap row."""
    mine = a["active"][lo:hi]
    rows = a["forbidden"][mine]  # fancy indexing: a copy
    rows[:, 0] = True
    return np.argmin(rows, axis=1)


def itr_conflict(lo: int, hi: int, a: dict):
    """Conflict detection among same-round neighbors, random priority."""
    mine = a["active"][lo:hi]
    colors, still, priority = a["colors"], a["still"], a["priority"]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], mine)
    same = (colors[nbrs] == colors[mine[seg]]) & still[nbrs]
    loses = same & (priority[nbrs] > priority[mine[seg]])
    lost = segment_any(loses, seg, mine.size)
    md = int(np.bincount(seg, minlength=mine.size).max()) if nbrs.size else 0
    return lost, seg, nbrs, md


#: Name -> kernel function; the worker-side lookup table for descriptors.
KERNELS: dict[str, Callable] = {
    "jp.wave": jp_wave,
    "adg.select": adg_select,
    "adg.push": adg_push,
    "adg.pull": adg_pull,
    "simcol.trial": simcol_trial,
    "dec.constraints": dec_constraints,
    "itr.choose": itr_choose,
    "itr.conflict": itr_conflict,
}
