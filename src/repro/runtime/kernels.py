"""Module-level round kernels + the picklable kernel-descriptor protocol.

The process backend cannot ship closures to workers, so every engine
round is expressed as a *kernel*: a module-level function

    kernel(lo, hi, a, **scalars) -> chunk result

where ``a`` maps short logical array names to NumPy arrays.  Engines
wrap one round as a :class:`Kernel` descriptor (kernel name + namespace
+ the arrays + picklable scalars) and hand it to
:meth:`ExecutionContext.map_chunks`:

- **serial / threaded** — the descriptor is simply *called*: the
  engine's own arrays are passed by reference, exactly the old closure
  fast path;
- **process** — the context registers each array in the run's
  :class:`~repro.runtime.shm.SharedArena` (zero-copy when the engine
  already holds the arena's view, one memcpy otherwise) and ships only
  ``(kernel name, array specs, scalars, lo, hi)`` to the persistent
  worker pool, which rebuilds zero-copy views and calls the same
  function.

One function per round on every backend is what makes the bit-identical
contract easy to keep: there is no second implementation to drift.
Kernels never mutate shared arrays — they return chunk results and the
coordinator combines them in chunk order.  That purity is also what the
fault layer (:mod:`repro.runtime.faults`) leans on: a kernel chunk can
be retried after a failure, re-dispatched after a worker death, or
re-run on a degraded backend, and it recomputes exactly the same result
— so recovery never perturbs colors, rounds, or the accounting books.
Any new kernel added to :data:`KERNELS` must keep this property.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..primitives import tiers as _tiers
from ..primitives.kernels import (
    ScratchArena,
    grouped_mex,
    multi_slice_gather,
    segment_any,
    segment_ids,
)


@dataclass(frozen=True)
class Kernel:
    """A picklable description of one round's per-chunk work.

    ``ns`` namespaces the arrays in the shared arena (``f"{ns}:{key}"``)
    so two engines sharing one run (an ADG ordering inside a JP run)
    never collide.  ``scalars`` must be picklable plain values.

    ``tier`` pins the kernel tier the chunk must execute under (None
    defers to the process-global active tier) — it travels with the
    descriptor so a forkserver worker resolves the same tier as the
    coordinator that built it.

    Calling the descriptor runs the kernel in-process on the arrays as
    given — the serial/threaded fast path.
    """

    name: str
    ns: str
    arrays: dict = field(default_factory=dict)
    scalars: dict = field(default_factory=dict)
    tier: str | None = None

    def __call__(self, lo: int, hi: int):
        if self.tier is not None and self.tier != _tiers.active_kernel_tier():
            _tiers.set_kernel_tier(self.tier)
        return KERNELS[self.name](lo, hi, self.arrays, **self.scalars)


_TLS = threading.local()


def scratch() -> ScratchArena:
    """The calling thread's kernel scratch arena (created on first use).

    Kernels run on the coordinator (serial, inlined rounds), on pool
    threads, or in worker processes; each execution lane gets its own
    arena, so scratch-backed intermediates never race, and the buffers
    persist across rounds — a worker that serves every JP wave stops
    allocating once its arena has grown to the wave's working set.

    Scratch backs *intermediates only*: every array a kernel returns to
    the coordinator is freshly allocated (see :class:`ScratchArena`).
    """
    ws = getattr(_TLS, "arena", None)
    if ws is None:
        ws = _TLS.arena = ScratchArena()
    return ws


def _batch_neighbors(indptr: np.ndarray, indices: np.ndarray,
                     batch: np.ndarray,
                     ws: ScratchArena | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """CSR batch-neighborhood gather (same as CSRGraph.batch_neighbors,
    usable where only the raw arrays travel to the worker).

    With ``ws`` the returned ``(seg, nbrs)`` are scratch-backed views —
    valid until the same thread's next kernel call, so callers must
    only derive *fresh* arrays from them before returning.  Kernels
    whose contract is to return ``seg``/``nbrs`` themselves
    (``simcol.trial``, ``itr.conflict``) must not pass ``ws``.
    """
    if ws is None:
        counts = (indptr[batch + 1] - indptr[batch]).astype(np.int64)
        nbrs = multi_slice_gather(indices, indptr[batch], counts)
        return segment_ids(counts), nbrs
    b = batch.size
    counts = np.take(indptr[1:], batch, out=ws.take("bn.cnt", b))
    starts = np.take(indptr, batch, out=ws.take("bn.start", b))
    np.subtract(counts, starts, out=counts)
    total = int(counts.sum())
    seg = segment_ids(counts, out=ws.take("bn.seg", total))
    nbrs = multi_slice_gather(indices, starts, counts,
                              out=ws.take("bn.nbrs", total),
                              seg=seg, scratch=ws)
    return seg, nbrs


# -- JP ----------------------------------------------------------------------

def jp_wave(lo: int, hi: int, a: dict):
    """GetColor for one chunk of the wave frontier (Alg. 3 lines 25-28).

    Fused gather+mex: neighbor colors are gathered *once* into scratch
    and the non-predecessor slots zeroed — ``grouped_mex`` ignores
    values <= 0, so this computes exactly
    ``grouped_mex(seg[is_pred], colors[nbrs[is_pred]])`` without
    materializing the two filtered copies.
    """
    part = a["frontier"][lo:hi]
    ranks, colors = a["ranks"], a["colors"]
    if _tiers._ACTIVE == "numba":
        # Fully fused compiled path: one pass over the chunk's CSR rows
        # computes colors, successors, and the wave counters directly —
        # bit-identical to the NumPy path below (parity-tested).
        chunk_colors, succ, k, wave_deg = _tiers._COMPILED.jp_wave_fused(
            a["indptr"], a["indices"], part, ranks, colors,
            scratch=scratch())
        return part, chunk_colors, succ, k, wave_deg
    ws = scratch()
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part, ws)
    k = nbrs.size
    nr = np.take(ranks, nbrs, out=ws.take("jp.nr", k, ranks.dtype))
    pr = np.take(ranks, part, out=ws.take("jp.pr", part.size, ranks.dtype))
    prs = np.take(pr, seg, out=ws.take("jp.prs", k, ranks.dtype))
    not_pred = np.less_equal(nr, prs, out=ws.take("jp.npred", k, bool))
    vals = np.take(colors, nbrs, out=ws.take("jp.vals", k))
    vals[not_pred] = 0
    chunk_colors = grouped_mex(seg, vals, part.size, scratch=ws)
    succ = np.compress(not_pred, nbrs)  # fresh: returned to the coordinator
    wave_deg = int(np.bincount(seg, minlength=part.size).max()) if k else 0
    return part, chunk_colors, succ, k, wave_deg


# -- ADG ---------------------------------------------------------------------

def adg_select(lo: int, hi: int, a: dict, *, threshold: float):
    """Batch selection: active vertices at or below the degree threshold."""
    ws = scratch()
    sel = np.less_equal(a["D"][lo:hi], threshold,
                        out=ws.take("sel.le", hi - lo, bool))
    np.logical_and(sel, a["active"][lo:hi], out=sel)
    picked = np.flatnonzero(sel)  # fresh
    picked += lo
    return picked


def adg_push(lo: int, hi: int, a: dict, *, compute_ranks: bool):
    """Push UPDATE (Alg. 1), optionally fused with PRIORITIZE (Alg. 6)."""
    part = a["batch"][lo:hi]
    ws = scratch()
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part, ws)
    k = nbrs.size
    live_nbr = np.take(a["active"], nbrs, out=ws.take("push.live", k, bool))
    preds = None
    if compute_ranks:
        # UPDATEandPRIORITIZE (Alg. 6): a neighbor removed *after* v —
        # still active, or later in the sorted batch — is a DAG
        # predecessor of v.
        explicit = a["explicit"]
        owner = np.take(part, seg, out=ws.take("push.owner", k))
        is_pred = np.take(a["r_mask"], nbrs, out=ws.take("push.pred", k, bool))
        en = np.take(explicit, nbrs,
                     out=ws.take("push.en", k, explicit.dtype))
        eo = np.take(explicit, owner,
                     out=ws.take("push.eo", k, explicit.dtype))
        later = np.greater(en, eo, out=ws.take("push.later", k, bool))
        np.logical_and(is_pred, later, out=is_pred)
        np.logical_or(is_pred, live_nbr, out=is_pred)
        preds = np.compress(is_pred, owner)  # fresh
    return np.compress(live_nbr, nbrs), k, preds


def adg_pull(lo: int, hi: int, a: dict):
    """Pull UPDATE (Alg. 2): per-vertex Count(N_U(v) cap R)."""
    part = a["live"][lo:hi]
    ws = scratch()
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part, ws)
    in_r = np.take(a["r_mask"], nbrs, out=ws.take("pull.inr", nbrs.size, bool))
    dec = np.zeros(part.size, dtype=np.int64)  # fresh: returned
    np.add.at(dec, seg, in_r)
    return dec, nbrs.size


# -- SIM-COL -----------------------------------------------------------------

def simcol_trial(lo: int, hi: int, a: dict):
    """Trial evaluation (Alg. 5): reject equal active-neighbor draws
    and draws forbidden by the B_v bitmap.

    ``seg``/``nbrs`` are part of the return contract (the coordinator
    replays them for the bitmap commit), so the neighborhood gather
    deliberately does *not* use scratch — only the masks do.
    """
    mine = a["active"][lo:hi]
    colors, still = a["colors"], a["still"]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], mine)
    ws = scratch()
    k = nbrs.size
    cn = np.take(colors, nbrs, out=ws.take("sc.cn", k))
    cm = np.take(colors, mine, out=ws.take("sc.cm", mine.size))
    cms = np.take(cm, seg, out=ws.take("sc.cms", k))
    same = np.equal(cn, cms, out=ws.take("sc.eq", k, bool))
    stn = np.take(still, nbrs, out=ws.take("sc.st", k, bool))
    np.logical_and(same, stn, out=same)
    clash = segment_any(same, seg, mine.size)  # fresh
    clash |= a["forbidden"][mine, colors[mine]]
    md = int(np.bincount(seg, minlength=mine.size).max()) if k else 0
    return clash, seg, nbrs, md


# -- DEC-ADG -----------------------------------------------------------------

def dec_constraints(lo: int, hi: int, a: dict, *, level: int):
    """Per-partition gather: deg_l counts and higher-partition colors."""
    part = a["verts"][lo:hi]
    levels = a["levels"]
    ws = scratch()
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], part, ws)
    k = nbrs.size
    lv = np.take(levels, nbrs, out=ws.take("dec.lv", k, levels.dtype))
    cg = np.zeros(part.size, dtype=np.int64)  # fresh
    ge = np.greater_equal(lv, level, out=ws.take("dec.ge", k, bool))
    np.add.at(cg, seg, ge)
    higher = np.greater(lv, level, out=ws.take("dec.hi", k, bool))
    kept = int(np.count_nonzero(higher))
    owners = np.compress(higher, seg)  # fresh
    owners += lo
    nb_h = np.compress(higher, nbrs, out=ws.take("dec.nbh", kept))
    return cg, owners, np.take(a["colors"], nb_h), k


# -- DEC-ADG-ITR -------------------------------------------------------------

def itr_choose(lo: int, hi: int, a: dict):
    """Smallest non-forbidden color: first False in each bitmap row."""
    mine = a["active"][lo:hi]
    forbidden = a["forbidden"]
    width = forbidden.shape[1]
    ws = scratch()
    rows = ws.take("itr.rows", mine.size * width, bool) \
        .reshape(mine.size, width)
    np.take(forbidden, mine, axis=0, out=rows)
    rows[:, 0] = True
    return np.argmin(rows, axis=1)  # fresh


def itr_conflict(lo: int, hi: int, a: dict):
    """Conflict detection among same-round neighbors, random priority.

    Like ``simcol.trial``, ``seg``/``nbrs`` are returned for the
    coordinator's bitmap commit, so the gather stays scratch-free.
    """
    mine = a["active"][lo:hi]
    colors, still, priority = a["colors"], a["still"], a["priority"]
    seg, nbrs = _batch_neighbors(a["indptr"], a["indices"], mine)
    ws = scratch()
    k = nbrs.size
    cn = np.take(colors, nbrs, out=ws.take("itr.cn", k))
    cm = np.take(colors, mine, out=ws.take("itr.cm", mine.size))
    cms = np.take(cm, seg, out=ws.take("itr.cms", k))
    same = np.equal(cn, cms, out=ws.take("itr.eq", k, bool))
    stn = np.take(still, nbrs, out=ws.take("itr.st", k, bool))
    np.logical_and(same, stn, out=same)
    pn = np.take(priority, nbrs, out=ws.take("itr.pn", k, priority.dtype))
    pm = np.take(priority, mine,
                 out=ws.take("itr.pm", mine.size, priority.dtype))
    pms = np.take(pm, seg, out=ws.take("itr.pms", k, priority.dtype))
    loses = np.greater(pn, pms, out=ws.take("itr.gt", k, bool))
    np.logical_and(loses, same, out=loses)
    lost = segment_any(loses, seg, mine.size)  # fresh
    md = int(np.bincount(seg, minlength=mine.size).max()) if k else 0
    return lost, seg, nbrs, md


#: Name -> kernel function; the worker-side lookup table for descriptors.
KERNELS: dict[str, Callable] = {
    "jp.wave": jp_wave,
    "adg.select": adg_select,
    "adg.push": adg_push,
    "adg.pull": adg_pull,
    "simcol.trial": simcol_trial,
    "dec.constraints": dec_constraints,
    "itr.choose": itr_choose,
    "itr.conflict": itr_conflict,
}

# The streaming-ingestion parse kernel lives with the graph substrate
# (repro.graphs.ingest imports no runtime modules at import time, so
# this bottom-of-module registration cannot cycle).
from ..graphs.ingest import ingest_parse_kernel  # noqa: E402

KERNELS["ingest.parse"] = ingest_parse_kernel
