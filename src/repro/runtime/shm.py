"""SharedArena: zero-copy NumPy arrays for the process backend.

The process backend keeps one :class:`SharedArena` per run (owned by
the pool-hosting :class:`~repro.runtime.ExecutionContext`).  The arena
places arrays — the CSR graph (``indptr``/``indices``) and the per-run
state the coordinator mutates between rounds (``colors``, ``D``,
``active``, ``forbidden``, ...) — in POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and hands the coordinator a
NumPy view *into* the segment.  Coordinator writes through that view
are immediately visible to every worker: nothing is re-sent between
rounds, and workers rebuild zero-copy views from tiny
``(segment name, shape, dtype)`` specs shipped with each chunk task.

Slots are keyed by a namespaced logical name and reuse their segment
across rounds when the capacity still fits (per-round arrays like the
JP frontier shrink and grow without segment churn); workers cache
attachments per segment name, so a re-used slot costs them nothing but
an ``np.ndarray`` view rebuild.

The worker pool is a lazily spawned, persistent
``ProcessPoolExecutor`` on the ``forkserver`` start method (each worker
is a fresh fork of a clean server process — no inherited locks, and
``numpy`` is preloaded so forks are cheap), falling back to ``spawn``
where forkserver is unavailable.  Workers never create or unlink
segments — the coordinator owns every lifetime and tears the arena
down in :meth:`SharedArena.close`; the resource tracker is shared with
the pool's children, so attach/detach in workers needs no unregister
games.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import NamedTuple

import numpy as np
from multiprocessing import shared_memory

#: Every live arena, for leak checks: tests (and the CI chaos job) can
#: assert that a recovery path left no named segment behind.  Weak refs
#: only — the registry never extends an arena's lifetime.
_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()


def live_segment_names() -> list[str]:
    """Names of every shared segment still linked by a live arena.

    The ground truth for the no-leak contract: after a run closes (or
    degrades off the process backend) this list must not contain the
    run's segments — an entry here is a name still claiming space under
    ``/dev/shm`` that only interpreter exit would reclaim.
    """
    names = []
    for arena in list(_ARENAS):
        for slot in arena._slots.values():
            if not slot.unlinked:
                names.append(slot.shm.name)
    return sorted(names)


def live_segment_bytes() -> int:
    """Total capacity of every still-linked shared segment, in bytes.

    The resource sampler polls this to chart the live ``/dev/shm``
    footprint alongside RSS — segment capacity is what the kernel
    actually reserves for the name, whatever shape the current view has.
    """
    total = 0
    for arena in list(_ARENAS):
        for slot in arena._slots.values():
            if not slot.unlinked:
                total += slot.capacity
    return total


def peak_rss_kb() -> int:
    """This process's lifetime peak resident set in KiB (0 where
    unsupported).  Shared by shard records and worker probes; the
    obs-layer variant handles the vfork+exec rusage quirk."""
    from ..obs.resources import peak_rss_kb as _peak

    return _peak()


class ArraySpec(NamedTuple):
    """Everything a worker needs to rebuild a zero-copy view."""

    shm_name: str
    shape: tuple
    dtype: str


class _Slot:
    """One named shared segment plus the coordinator's current view."""

    __slots__ = ("shm", "capacity", "view", "spec", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int):
        self.shm = shm
        self.capacity = capacity
        self.view: np.ndarray | None = None
        self.spec: ArraySpec | None = None
        self.unlinked = False


class SharedArena:
    """Named shared-memory slots with capacity reuse (coordinator side)."""

    def __init__(self):
        self._slots: dict[str, _Slot] = {}
        self.bytes_allocated = 0
        self.puts = 0
        self.reuses = 0
        _ARENAS.add(self)

    # -- coordinator API -----------------------------------------------------

    def adopt(self, name: str, arr: np.ndarray) -> ArraySpec:
        """Make ``arr`` available to workers under ``name``; return its spec.

        Zero-copy when ``arr`` *is* the slot's current view (the engine
        kept writing through it); otherwise the array is copied into
        the slot (growing the segment only when capacity is exceeded).
        """
        slot = self._slots.get(name)
        if slot is not None and slot.view is arr:
            self.reuses += 1
            return slot.spec
        self.put(name, arr)
        return self._slots[name].spec

    def put(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` into the named slot; return the shared view.

        The returned view has ``arr``'s shape and dtype but lives in
        shared memory: coordinator writes through it are visible to
        workers without any further transfer.
        """
        arr = np.ascontiguousarray(arr)
        nbytes = max(1, arr.nbytes)  # zero-size segments are invalid
        slot = self._slots.get(name)
        if slot is None or slot.capacity < nbytes:
            if slot is not None:
                self._release(slot)
                self.bytes_allocated -= slot.capacity
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            slot = _Slot(shm, nbytes)
            self._slots[name] = slot
            self.bytes_allocated += nbytes
        view = np.ndarray(arr.shape, dtype=arr.dtype,
                          buffer=slot.shm.buf)
        view[...] = arr
        slot.view = view
        slot.spec = ArraySpec(slot.shm.name, arr.shape, arr.dtype.str)
        self.puts += 1
        return view

    def owns(self, arr: np.ndarray) -> bool:
        """Is ``arr`` one of the arena's current views?"""
        return any(slot.view is arr for slot in self._slots.values())

    def get(self, name: str) -> np.ndarray | None:
        """The named slot's current shared view, or ``None``."""
        slot = self._slots.get(name)
        return slot.view if slot is not None else None

    @staticmethod
    def _unlink(slot: _Slot) -> None:
        if slot.unlinked:
            return
        slot.unlinked = True
        try:
            slot.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @staticmethod
    def _release(slot: _Slot) -> None:
        slot.view = None
        try:
            slot.shm.close()
        except BufferError:
            # A live engine view still points into the segment; the
            # mapping is released when that view is garbage-collected.
            pass
        SharedArena._unlink(slot)

    def unlink_all(self) -> None:
        """Unlink every segment *name* while keeping the mappings alive.

        The backend-degradation path calls this the moment a run leaves
        the process backend for good: no new worker will ever attach, so
        the names can be released immediately instead of leaking under
        ``/dev/shm`` until garbage collection.  Existing coordinator
        views stay valid — an unlinked segment's memory lives until the
        last mapping closes — so engines holding shared state keep
        running unchanged on the degraded backend.
        """
        for slot in self._slots.values():
            self._unlink(slot)

    def close(self) -> None:
        """Unlink every segment.  Call after the worker pool is down."""
        for slot in self._slots.values():
            self._release(slot)
        self._slots.clear()

    def describe(self) -> dict:
        return {"slots": len(self._slots),
                "bytes": self.bytes_allocated,
                "puts": self.puts, "reuses": self.reuses}


# -- worker side -------------------------------------------------------------

#: Per-process cache of attached segments (the coordinator owns their
#: lifetime; workers only map them).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _view(spec: ArraySpec) -> np.ndarray:
    shm = _ATTACHED.get(spec.shm_name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        _ATTACHED[spec.shm_name] = shm
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                      buffer=shm.buf)


#: CPU-seconds baseline stamped at worker init, so probes report CPU
#: spent on this run's tasks rather than interpreter/import startup.
_WORKER_CPU_BASE: list[float] = []


def _pool_worker_init(extra_sys_path: list[str],
                      kernel_tier: str = "numpy") -> None:
    """Worker initializer: mirror the coordinator's import path (the
    coordinator may run from a source tree that is not installed),
    resolve the coordinator's kernel tier (priming the numba compile
    cache *here*, never inside a timed span), and stamp the
    resource-telemetry CPU baseline last so compile/import time is
    excluded from the worker's reported cpu_s."""
    for p in reversed(extra_sys_path):
        if p not in sys.path:
            sys.path.insert(0, p)
    from ..primitives.tiers import set_kernel_tier
    set_kernel_tier(kernel_tier)
    t = os.times()
    _WORKER_CPU_BASE[:] = [float(t.user + t.system)]


def worker_probe() -> dict:
    """Report this worker's peak RSS and CPU since init.

    Runs as an ordinary pool task: the coordinator submits one probe
    per worker slot (a few more than workers, since scheduling is not
    round-robin) and dedupes the answers by pid.
    """
    t = os.times()
    base = _WORKER_CPU_BASE[0] if _WORKER_CPU_BASE else 0.0
    return {"pid": os.getpid(),
            "peak_rss_kb": peak_rss_kb(),
            "cpu_s": round(max(0.0, float(t.user + t.system) - base), 6)}


def run_kernel_task(kernel_name: str, specs: dict, scalars: dict,
                    lo: int, hi: int, timed: bool, fault=None,
                    tier: str | None = None):
    """Execute one chunk of a kernel descriptor inside a worker.

    With ``timed`` the chunk wall and the worker's pid ride back for
    the tracer (perf_counter is monotonic system-wide on the platforms
    the process backend targets, so the coordinator can place the span
    on its own timeline).

    ``fault`` is an optional :class:`~repro.runtime.faults.FaultSpec`
    drawn by the coordinator for this dispatch: applied *in the
    worker*, so an injected ``kill`` is a real ``os._exit`` (the
    coordinator observes a broken pool, exactly like an OOM-killed
    worker), a ``delay`` stalls the worker, and an ``error`` raises
    from inside the chunk.
    """
    from .kernels import KERNELS

    if tier is not None:
        # Normally a no-op (the pool initializer already resolved the
        # run's tier); re-asserting per task keeps a worker honest when
        # two contexts with different tiers share a process lifetime.
        from ..primitives.tiers import set_kernel_tier
        set_kernel_tier(tier)
    if fault is not None:
        from .faults import worker_apply
        worker_apply(fault)
    a = {name: _view(spec) for name, spec in specs.items()}
    fn = KERNELS[kernel_name]
    if not timed:
        return fn(lo, hi, a, **scalars)
    c0 = time.perf_counter()
    res = fn(lo, hi, a, **scalars)
    return res, c0, time.perf_counter(), os.getpid()


def create_pool(workers: int,
                kernel_tier: str = "numpy") -> ProcessPoolExecutor:
    """A persistent forkserver pool (spawn where unavailable).

    ``kernel_tier`` is the coordinator's *resolved* tier; every worker
    asserts it (and primes the compiled tier's jit cache) in its
    initializer, so chunk walls never include compilation.
    """
    methods = mp.get_all_start_methods()
    method = "forkserver" if "forkserver" in methods else "spawn"
    ctx = mp.get_context(method)
    if method == "forkserver":
        try:
            # Preload numpy in the fork server so each worker fork is
            # cheap; repro itself is imported on the worker's first
            # task (sys.path is fixed up by the initializer).
            ctx.set_forkserver_preload(["numpy"])
        except Exception:  # pragma: no cover - preload is best-effort
            pass
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                               initializer=_pool_worker_init,
                               initargs=(list(sys.path), kernel_tier))
