"""Unified execution runtime: backend selection (serial / threaded /
process), chunked — optionally work-balanced — execution, shared-memory
state, and end-to-end accounting and tracing behind one
:class:`ExecutionContext` object."""

from .context import (
    BACKENDS,
    CHUNKS_PER_WORKER,
    ChunkError,
    ExecutionContext,
    default_backend,
    default_weighted_chunks,
    resolve_context,
)
from .kernels import KERNELS, Kernel
from .shm import SharedArena

__all__ = [
    "BACKENDS", "CHUNKS_PER_WORKER", "ChunkError", "ExecutionContext",
    "KERNELS", "Kernel", "SharedArena", "default_backend",
    "default_weighted_chunks", "resolve_context",
]
