"""Unified execution runtime: backend selection (serial / threaded /
process), chunked — optionally work-balanced — execution, shared-memory
state, deterministic fault injection with retry / respawn / degradation
recovery, and end-to-end accounting and tracing behind one
:class:`ExecutionContext` object."""

from .context import (
    BACKENDS,
    CHUNKS_PER_WORKER,
    ChunkError,
    ExecutionContext,
    default_backend,
    default_weighted_chunks,
    resolve_context,
)
from .faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    WorkerDeath,
    resolve_fault_plan,
)
from .kernels import KERNELS, Kernel
from .shm import SharedArena

__all__ = [
    "BACKENDS", "CHUNKS_PER_WORKER", "ChunkError", "ExecutionContext",
    "FaultInjected", "FaultPlan", "FaultSpec", "KERNELS", "Kernel",
    "SharedArena", "WorkerDeath", "default_backend",
    "default_weighted_chunks", "resolve_context", "resolve_fault_plan",
]
