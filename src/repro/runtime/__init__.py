"""Unified execution runtime: backend selection (serial / threaded /
process), chunked — optionally work-balanced — execution, shared-memory
state, deterministic fault injection with retry / respawn / degradation
recovery, and end-to-end accounting and tracing behind one
:class:`ExecutionContext` object."""

from .adaptive import (
    ADAPTIVE_MODES,
    DispatchEstimator,
    default_adaptive,
    resolve_adaptive,
)
from .context import (
    BACKENDS,
    CHUNKS_PER_WORKER,
    ChunkError,
    ExecutionContext,
    default_backend,
    default_weighted_chunks,
    resolve_context,
)
from .faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    WorkerDeath,
    resolve_fault_plan,
)
from .kernels import KERNELS, Kernel
from .shard import (
    ShardedContext,
    ShardError,
    ShardPlan,
    ShardSpec,
    default_shards,
    plan_shards,
)
from .shm import SharedArena, live_segment_names

__all__ = [
    "ADAPTIVE_MODES", "BACKENDS", "CHUNKS_PER_WORKER", "ChunkError",
    "DispatchEstimator", "ExecutionContext",
    "FaultInjected", "FaultPlan", "FaultSpec", "KERNELS", "Kernel",
    "ShardError", "ShardPlan", "ShardSpec", "ShardedContext",
    "SharedArena", "WorkerDeath", "default_adaptive", "default_backend",
    "default_shards", "default_weighted_chunks", "live_segment_names",
    "plan_shards", "resolve_adaptive", "resolve_context",
    "resolve_fault_plan",
]
