"""Unified execution runtime: backend selection, chunked execution,
end-to-end accounting and tracing behind one :class:`ExecutionContext`
object."""

from .context import (
    BACKENDS,
    CHUNKS_PER_WORKER,
    ChunkError,
    ExecutionContext,
    default_backend,
    resolve_context,
)

__all__ = [
    "BACKENDS", "CHUNKS_PER_WORKER", "ChunkError", "ExecutionContext",
    "default_backend", "resolve_context",
]
