"""The sharding layer: plans over shards, engines over processes.

The DEC family already decomposes a graph into partitions that are
colored almost independently; this module promotes that decomposition
from an engine-internal detail to a first-class runtime layer.  A
:class:`ShardPlan` cuts the vertex set into degree-balanced shards —
preferring DEC-ADG's low-degree level structure when the caller has
one, falling back to degree-weighted contiguous id ranges — and
materializes each shard as an induced subgraph with ghost bookkeeping
(:func:`repro.graphs.subgraph.shard_extract`): which member vertices
have cross-shard edges (*boundary*), and which external vertices they
see (*ghosts*).

A :class:`ShardedContext` then executes one engine per shard.  On the
process backend every shard's arrays (sub-CSR, levels, priorities,
colors) live in their own :class:`~repro.runtime.shm.SharedArena`
segments; each worker rebuilds zero-copy views, runs the shard engine
to completion, and writes colors straight into the shared segment — so
a worker's peak resident set is bounded by its largest *shard*, never
the whole graph.  On the serial/threaded backends (or with one worker)
the same runner executes inline, shard by shard, over the same arrays:
colors and accounting books are bit-identical between the two paths.

Fault semantics extend :mod:`repro.runtime.faults` to shard
granularity.  A shard-addressed ``kill`` is a real worker death on the
process backend (``os._exit`` inside the worker, a broken pool on the
coordinator); the pool is recycled against the run's respawn budget
(``$REPRO_RESPAWNS``) and only the lost shards are re-dispatched —
their segments survive the pool.  A shard ``error`` retries against
the run's retry budget (``$REPRO_RETRIES``), then raises
:class:`ShardError`.  When the respawn budget is spent the layer
*degrades to unsharded execution*: :meth:`ShardedContext.run` returns
``None``, unlinks every shard segment first (no ``/dev/shm`` leak),
and the calling engine re-runs the plain single-context path — same
colors, one level down the sturdiness ladder.

This module is deliberately engine-agnostic: the shard runner is a
dotted ``module:function`` name resolved inside the worker, so the
runtime layer never imports the coloring package.
"""

from __future__ import annotations

import importlib
import os
import time
from concurrent.futures import wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.subgraph import InducedSubgraph, shard_extract
from ..machine.parallel import split_chunks_weighted
from .faults import WorkerDeath, apply_fault
from .shm import SharedArena, _view, create_pool


class ShardError(RuntimeError):
    """A shard engine failed for good (retry budget exhausted)."""


def default_shards() -> int:
    """Shard count: $REPRO_SHARDS, else 0 (sharding off).

    Unset, empty, ``0`` or ``off`` disables the sharding layer; a
    value of 1 is accepted and equivalent (one shard is just the
    unsharded engine).
    """
    env = os.environ.get("REPRO_SHARDS", "").strip().lower()
    if not env or env in ("0", "off"):
        return 0
    try:
        value = int(env)
    except ValueError:
        raise ValueError(f"$REPRO_SHARDS must be a non-negative int, "
                         f"got {env!r}") from None
    if value < 0:
        raise ValueError(f"$REPRO_SHARDS must be >= 0, got {value}")
    return value


# -- the plan -----------------------------------------------------------------

#: Working-set bytes per shard vertex beyond the sub-CSR: the id map,
#: levels, priorities, and colors arrays shipped to the shard engine
#: (int64 each).
_PER_VERTEX_ARRAYS = 4


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a :class:`ShardPlan`.

    ``sub`` is the materialized induced subgraph (local ids, with the
    parent-space ``index_map``); ``boundary`` the member vertices with
    at least one cross-shard edge and ``ghosts`` the external
    neighbors they see — both as original (global) ids.
    """

    sid: int
    sub: InducedSubgraph
    boundary: np.ndarray
    ghosts: np.ndarray

    @property
    def vertices(self) -> np.ndarray:
        return self.sub.vertices

    @property
    def n(self) -> int:
        return self.sub.n

    @property
    def m(self) -> int:
        return self.sub.m

    @property
    def nbytes(self) -> int:
        """The shard engine's mapped working set: sub-CSR plus the
        per-vertex id/level/priority/color arrays."""
        g = self.sub.graph
        return int(g.indptr.nbytes + g.indices.nbytes
                   + self.sub.vertices.nbytes * _PER_VERTEX_ARRAYS)


@dataclass
class ShardPlan:
    """A partition of the vertex set into engine-sized shards.

    ``assign[v]`` is v's shard id; ``cross_u``/``cross_v`` list every
    cross-shard edge once (``assign[u] != assign[v]``, ``u < v``) — the
    exact edge set the boundary-repair protocol has to certify.
    """

    planner: str  # 'levels' (DEC level bands) or 'ranges' (id ranges)
    assign: np.ndarray
    shards: list[ShardSpec] = field(default_factory=list)
    cross_u: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    cross_v: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def cut_edges(self) -> int:
        return int(self.cross_u.size)

    @property
    def max_nbytes(self) -> int:
        return max((s.nbytes for s in self.shards), default=0)

    def digest(self) -> dict:
        """JSON-friendly summary (rides on ``ColoringResult.shards``)."""
        return {
            "n_shards": self.n_shards,
            "planner": self.planner,
            "cut_edges": self.cut_edges,
            "sizes": [s.n for s in self.shards],
            "edges": [s.m for s in self.shards],
            "boundary": [int(s.boundary.size) for s in self.shards],
            "ghosts": [int(s.ghosts.size) for s in self.shards],
            "bytes": [s.nbytes for s in self.shards],
            "max_bytes": self.max_nbytes,
        }


def plan_shards(g: CSRGraph, n_shards: int,
                levels: np.ndarray | None = None) -> ShardPlan:
    """Cut ``g`` into up to ``n_shards`` degree-balanced shards.

    With ``levels`` (a DEC/ADG level array) vertices are grouped into
    contiguous *level bands*: vertices are ordered by level and the
    band boundaries come from a prefix-sum split of degree weight, so
    most edges — which DEC's low-degree decomposition concentrates
    inside and between adjacent levels — stay shard-internal and every
    shard carries comparable work.  Without levels the fallback is the
    same degree-weighted split over plain vertex-id ranges.

    Within a shard vertices are sorted ascending, which keeps the
    extraction on :func:`~repro.graphs.subgraph.shard_extract`'s
    re-sort-free fast path.  Degenerate inputs (empty graph,
    ``n_shards`` <= 1) come back as a single-shard or empty plan; the
    caller decides whether that is worth sharded execution.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n = g.n
    if levels is not None and n_shards > 1 and n > 0:
        order = np.argsort(np.asarray(levels), kind="stable").astype(np.int64)
        planner = "levels"
    else:
        order = np.arange(n, dtype=np.int64)
        planner = "ranges"
    # +1 keeps isolated vertices from collapsing into one giant shard.
    weights = g.degrees[order] + 1
    bounds = split_chunks_weighted(n, n_shards, weights)
    assign = np.zeros(n, dtype=np.int64)
    shards: list[ShardSpec] = []
    for sid, (lo, hi) in enumerate(bounds):
        verts = np.sort(order[lo:hi])
        assign[verts] = sid
        sub, boundary, ghosts = shard_extract(g, verts,
                                              name=f"{g.name}#s{sid}")
        shards.append(ShardSpec(sid=sid, sub=sub, boundary=boundary,
                                ghosts=ghosts))
    u, v = g.undirected_edges()
    cross = assign[u] != assign[v]
    return ShardPlan(planner=planner, assign=assign, shards=shards,
                     cross_u=u[cross].astype(np.int64),
                     cross_v=v[cross].astype(np.int64))


# -- worker entry -------------------------------------------------------------

def run_shard_task(runner: str, specs: dict, scalars: dict, fault=None):
    """Execute one shard engine inside a process-pool worker.

    ``runner`` is a dotted ``module:function`` name resolved here (the
    runtime layer stays import-free of engine code); ``specs`` maps
    array names to :class:`~repro.runtime.shm.ArraySpec` handles the
    worker turns into zero-copy views.  ``fault`` is a shard-addressed
    directive drawn by the coordinator: a ``kill`` is applied *before*
    anything else and is a real ``os._exit`` — the coordinator sees a
    broken pool, exactly like an OOM-killed shard.

    The runner's returned record is augmented with the worker's wall
    stamps, pid, and peak RSS so the coordinator can place the shard
    span on its timeline and book per-shard peak footprints.
    """
    if fault is not None:
        from .faults import worker_apply
        worker_apply(fault)
    arrays = {name: _view(spec) for name, spec in specs.items()}
    mod_name, fn_name = runner.split(":")
    fn = getattr(importlib.import_module(mod_name), fn_name)
    t0 = time.perf_counter()
    c0 = _cpu_s()
    record = fn(arrays, **scalars)
    record["t0"], record["t1"] = t0, time.perf_counter()
    record["pid"] = os.getpid()
    record["rss_kb"] = _peak_rss_kb()
    record["cpu_s"] = round(_cpu_s() - c0, 6)
    return record


def _peak_rss_kb() -> int:
    """This process's peak resident set in KiB (0 where unsupported)."""
    from .shm import peak_rss_kb
    return peak_rss_kb()


def _cpu_s() -> float:
    t = os.times()
    return float(t.user + t.system)


def _call_inline(runner: str, arrays: dict, scalars: dict) -> dict:
    """The inline twin of :func:`run_shard_task` (no view rebuild)."""
    mod_name, fn_name = runner.split(":")
    fn = getattr(importlib.import_module(mod_name), fn_name)
    t0 = time.perf_counter()
    c0 = _cpu_s()
    record = fn(arrays, **scalars)
    record["t0"], record["t1"] = t0, time.perf_counter()
    record["pid"] = os.getpid()
    record["rss_kb"] = _peak_rss_kb()
    record["cpu_s"] = round(_cpu_s() - c0, 6)
    return record


# -- the sharded executor -----------------------------------------------------

class ShardedContext:
    """Run one engine per shard, with the run's recovery policy.

    Owns a private worker pool and :class:`SharedArena` for the shard
    wave (separate from the chunk-level pool the parent context may
    hold: shard workers are long-lived engine runs, not chunk tasks).
    The parent :class:`~repro.runtime.ExecutionContext` supplies the
    budgets (retries, backoff, respawns), the fault plan, the tracer,
    and the fault counters — shard recovery shows up in the same
    ``fault.*`` digest as chunk recovery, under ``fault.shard.*``
    names.

    :meth:`run` returns one record per shard (the runner's return
    value plus timing/pid/RSS), or ``None`` when the respawn budget
    was exhausted and the caller must degrade to unsharded execution.
    Process-backend execution and the inline fallback produce
    bit-identical records (minus wall-clock fields) — the parity
    contract of the chunk runtime, lifted to shards.
    """

    def __init__(self, ctx, plan: ShardPlan, runner: str):
        self.ctx = ctx
        self.plan = plan
        self.runner = runner
        self.respawns = 0
        self.degraded = False

    # The budgets live on the parent run's pool host, so sharded and
    # chunked recovery share one policy (and one $REPRO_* seam).

    @property
    def _host(self):
        return self.ctx._pool_host

    def _draw(self, sid: int, attempt: int):
        plan = self._host._faultplan
        if plan is None:
            return None
        spec = plan.draw_shard(sid, attempt)
        if spec is not None:
            self.ctx._fault_count(f"fault.injected.{spec.kind}", 0)
            if self.ctx.tracer.enabled:
                self.ctx.tracer.instant(f"fault.{spec.kind}", cat="fault",
                                        shard=sid, attempt=attempt)
        return spec

    def _respawn_or_degrade(self, sid: int) -> bool:
        """One shard worker died: True to keep going (respawned),
        False to degrade to unsharded execution."""
        host = self._host
        if self.respawns < host._max_respawns:
            self.respawns += 1
            self.ctx._fault_count("fault.shard.respawns", 0)
            self.ctx._fault_event({"kind": "shard-respawn", "shard": sid})
            return True
        self.degraded = True
        self.ctx._fault_count("fault.shard.degradations", 0)
        self.ctx._fault_event({"kind": "shard-degrade", "shard": sid})
        return False

    def _retry_or_raise(self, sid: int, attempt: int, exc) -> None:
        host = self._host
        if attempt > host._retries:
            raise ShardError(
                f"shard {sid} failed after {attempt} attempt(s): "
                f"{exc}") from exc
        self.ctx._fault_count("fault.retries", 0)
        if host._backoff > 0:
            time.sleep(min(1.0, host._backoff * (2 ** (attempt - 1))))

    def run(self, shard_arrays: list[dict], shard_scalars: list[dict],
            outputs: tuple[str, ...] = ("colors",)) -> list[dict] | None:
        """Execute every shard; mutate ``outputs`` arrays in place.

        ``shard_arrays[sid]`` maps array names to the shard's NumPy
        arrays; ``shard_scalars[sid]`` the picklable keyword arguments
        for the runner.  On the process path the arrays are copied
        into per-shard arena segments and the named ``outputs`` are
        copied back after the wave; inline the runner mutates the
        caller's arrays directly — either way the caller reads its
        results from ``shard_arrays``.
        """
        n_shards = len(shard_arrays)
        use_pool = self.ctx.backend == "process" and self.ctx.workers > 1 \
            and n_shards > 1
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.count("shard.dispatched", n_shards)
        if not use_pool:
            return self._run_inline(shard_arrays, shard_scalars)
        return self._run_pooled(shard_arrays, shard_scalars, outputs)

    def _run_inline(self, shard_arrays, shard_scalars) -> list[dict] | None:
        """Serial fallback: same runner, same arrays, same fault
        coordinates.  An injected kill has no pool to break here, so it
        draws on the respawn budget directly — the same ladder, ending
        in the same unsharded degradation."""
        results: list[dict | None] = [None] * len(shard_arrays)
        for sid, (arrays, scalars) in enumerate(zip(shard_arrays,
                                                    shard_scalars)):
            attempt = 0
            while True:
                attempt += 1
                fault = self._draw(sid, attempt)
                try:
                    if fault is not None:
                        apply_fault(fault)
                    results[sid] = _call_inline(self.runner, arrays, scalars)
                    break
                except WorkerDeath:
                    if not self._respawn_or_degrade(sid):
                        return None
                except Exception as exc:
                    self._retry_or_raise(sid, attempt, exc)
        self._record_spans(results)
        return results

    def _run_pooled(self, shard_arrays, shard_scalars,
                    outputs) -> list[dict] | None:
        host = self._host
        n_shards = len(shard_arrays)
        workers = min(self.ctx.workers, n_shards)
        arena = SharedArena()
        pool = create_pool(workers)
        try:
            specs = [
                {name: arena.adopt(f"s{sid}:{name}", arr)
                 for name, arr in arrays.items()}
                for sid, arrays in enumerate(shard_arrays)]
            results: list[dict | None] = [None] * n_shards
            attempts = [0] * n_shards
            todo = list(range(n_shards))
            while todo:
                wave, todo = todo, []
                futs = {}
                dead_sid = None
                for i, sid in enumerate(wave):
                    attempts[sid] += 1
                    fault = self._draw(sid, attempts[sid])
                    try:
                        futs[pool.submit(run_shard_task, self.runner,
                                         specs[sid], shard_scalars[sid],
                                         fault)] = sid
                    except BrokenProcessPool:
                        dead_sid = sid
                        todo.extend(wave[i:])
                        break
                pending = set(futs)
                while pending:
                    done, pending = wait(pending)
                    for f in done:
                        sid = futs[f]
                        try:
                            results[sid] = f.result()
                        except BrokenProcessPool:
                            dead_sid = sid
                            todo.append(sid)
                        except Exception as exc:
                            self._retry_or_raise(sid, attempts[sid], exc)
                            todo.append(sid)
                if dead_sid is not None:
                    # The segments outlive the pool: only the lost
                    # shards re-run, completed results stay.
                    pool.shutdown(wait=False)
                    pool = None
                    if not self._respawn_or_degrade(dead_sid):
                        arena.unlink_all()
                        return None
                    pool = create_pool(workers)
            self._record_spans(results)
            for sid, arrays in enumerate(shard_arrays):
                for name in outputs:
                    view = arena.get(f"s{sid}:{name}")
                    if view is not None:
                        arrays[name][...] = view
            return results
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            arena.close()

    def _record_spans(self, results) -> None:
        tracer = self.ctx.tracer
        if not tracer.enabled:
            return
        # Workers stamp with perf_counter; anchor to the tracer epoch
        # (same monotonic clock) like the chunk runtime does.
        epoch = time.perf_counter() - tracer.now()
        for sid, rec in enumerate(results):
            if rec is None:
                continue
            tracer.record(f"shard{sid}", "shard", rec["t0"] - epoch,
                          rec["t1"] - epoch, tid=rec.get("pid"),
                          shard=sid)

    def digest(self) -> dict:
        """Execution half of the ``ColoringResult.shards`` record."""
        return {"respawns": self.respawns, "degraded": self.degraded}
