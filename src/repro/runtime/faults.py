"""Deterministic fault injection for the execution runtime.

The runtime's recovery machinery (per-chunk retry, round deadlines,
worker respawn, backend degradation — see
:meth:`~repro.runtime.ExecutionContext.map_chunks`) is only trustworthy
if every recovery path can be exercised *on demand and reproducibly*.
A :class:`FaultPlan` is a seeded, deterministic schedule of injected
faults addressed by ``(round, chunk)`` coordinates: round ids are the
run-wide :meth:`map_chunks` sequence numbers shared by every context of
one run, chunk ids index the round's chunk list, so the same plan hits
the same coordinates on every backend and on every re-run.

Three fault kinds:

- ``error`` — the chunk raises :class:`FaultInjected` instead of
  running (a kernel bug, a transient allocation failure);
- ``delay`` — the chunk sleeps ``param`` seconds before running (a
  straggler; combine with ``$REPRO_ROUND_TIMEOUT`` to exercise the
  deadline path);
- ``kill`` — worker death.  On the process backend the directive ships
  to the worker, which ``os._exit(1)``\\ s — a *real* dead process and a
  broken pool.  On the threaded and serial backends (threads cannot be
  killed safely) the chunk raises :class:`WorkerDeath`, which the
  runtime treats exactly like a dead worker: pool respawn, or backend
  degradation once the respawn budget is spent.

Plan grammar (``$REPRO_FAULTS`` or the ``faults=`` argument)::

    plan   := clause (';' clause)*
    clause := KIND '@' ROUND '.' CHUNK [':' PARAM] ['x' TIMES]
            | KIND '@' 's' SHARD [':' PARAM] ['x' TIMES]
            | KIND '%' RATE [':' PARAM]
            | 'seed=' INT
    KIND   := 'error' | 'delay' | 'kill'
    ROUND, CHUNK, SHARD := non-negative int, or '*' (any)
    PARAM  := float (delay seconds; ignored for error/kill)
    TIMES  := fire on the first TIMES attempts of a coordinate (default 1)
    RATE   := float in [0, 1] — probabilistic clause, decided by a
              seeded hash of (seed, clause, round, chunk); first
              attempts only, so retries always make progress

Shard-addressed clauses (``KIND@sSHARD``) target the sharding layer
(:mod:`repro.runtime.shard`): the coordinate is the shard id of a
dispatched shard engine, drawn through :meth:`FaultPlan.draw_shard`
once per (shard, attempt).  They are invisible to the per-chunk
:meth:`FaultPlan.draw` — and vice versa — so one plan can exercise both
granularities without cross-talk.

Examples::

    error@3.0            # chunk 0 of round 3 raises once
    error@3.0x5          # ... on its first five attempts (exhausts a
                         # retry budget < 5 -> ChunkError)
    delay@7.2:0.25       # chunk 2 of round 7 sleeps 250 ms first
    kill@5.*             # every chunk of round 5 kills its worker
    kill@s1              # shard 1's engine worker dies on attempt 1
    kill@s*x99           # every shard dies on every attempt (exhausts
                         # the respawn budget -> unsharded degradation)
    error%0.01;seed=42   # 1% of all (round, chunk) dispatches fail once

Explicit and probabilistic clauses only fire while ``attempt`` stays in
range, so a plan with default ``TIMES`` never outlasts the retry
budget: recovery re-runs the chunk, the plan stays quiet, and the
result is bit-identical to a fault-free run (chunks are pure — all
mutation happens on the coordinator, in chunk order).
"""

from __future__ import annotations

import os
import re
import time
import zlib
from dataclasses import dataclass

KINDS = ("error", "delay", "kill")

#: Sleep applied by a ``delay`` clause with no explicit PARAM.
DEFAULT_DELAY = 0.05


class FaultInjected(RuntimeError):
    """An injected chunk failure (the ``error`` fault kind)."""


class WorkerDeath(FaultInjected):
    """An injected worker death (the ``kill`` fault kind, simulated on
    backends that cannot kill a real worker)."""


@dataclass(frozen=True)
class FaultSpec:
    """One clause of a :class:`FaultPlan`.

    ``round``/``chunk`` of ``None`` are wildcards; ``rate`` switches
    the clause to probabilistic mode (coordinates are ignored then).
    A ``shard`` coordinate (a shard id, or ``'*'`` as the any-shard
    wildcard) makes the clause shard-addressed: matched only by
    :meth:`FaultPlan.draw_shard`, never by the per-chunk draw.
    """

    kind: str
    round: int | None = None
    chunk: int | None = None
    param: float = 0.0
    times: int = 1
    rate: float | None = None
    shard: int | str | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, "
                             f"got {self.kind!r}")
        if self.param < 0:
            raise ValueError(f"fault param must be >= 0, got {self.param}")
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.shard is not None and self.shard != "*" \
                and (not isinstance(self.shard, int) or self.shard < 0):
            raise ValueError(f"fault shard must be a non-negative int or "
                             f"'*', got {self.shard!r}")


_CLAUSE_AT = re.compile(
    r"^(error|delay|kill)@(\d+|\*)\.(\d+|\*)"
    r"(?::([0-9]*\.?[0-9]+))?(?:x(\d+))?$")
_CLAUSE_SHARD = re.compile(
    r"^(error|delay|kill)@s(\d+|\*)"
    r"(?::([0-9]*\.?[0-9]+))?(?:x(\d+))?$")
_CLAUSE_RATE = re.compile(
    r"^(error|delay|kill)%([0-9]*\.?[0-9]+)(?::([0-9]*\.?[0-9]+))?$")


class FaultPlan:
    """A deterministic schedule of injected faults for one run.

    The runtime consults :meth:`draw` once per chunk *dispatch* (every
    attempt of every chunk of every round); the first matching clause
    fires.  ``fired`` counts the events actually injected per kind —
    the ground truth the runtime's ``fault.injected.*`` counters are
    tested against.
    """

    def __init__(self, specs=(), seed: int = 0):
        self.specs = list(specs)
        for s in self.specs:
            if not isinstance(s, FaultSpec):
                raise TypeError(f"specs must be FaultSpec, got {type(s)}")
        self.seed = int(seed)
        self.fired: dict[str, int] = {}

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan(specs={self.specs!r}, seed={self.seed})"

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the plan grammar (see the module docstring)."""
        specs: list[FaultSpec] = []
        seed = 0
        for raw in text.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[5:])
                continue
            m = _CLAUSE_AT.match(clause)
            if m:
                kind, rnd, chk, param, times = m.groups()
                specs.append(FaultSpec(
                    kind=kind,
                    round=None if rnd == "*" else int(rnd),
                    chunk=None if chk == "*" else int(chk),
                    param=float(param) if param else
                    (DEFAULT_DELAY if kind == "delay" else 0.0),
                    times=int(times) if times else 1))
                continue
            m = _CLAUSE_SHARD.match(clause)
            if m:
                kind, shard, param, times = m.groups()
                specs.append(FaultSpec(
                    kind=kind,
                    shard="*" if shard == "*" else int(shard),
                    param=float(param) if param else
                    (DEFAULT_DELAY if kind == "delay" else 0.0),
                    times=int(times) if times else 1))
                continue
            m = _CLAUSE_RATE.match(clause)
            if m:
                kind, rate, param = m.groups()
                specs.append(FaultSpec(
                    kind=kind, rate=float(rate),
                    param=float(param) if param else
                    (DEFAULT_DELAY if kind == "delay" else 0.0)))
                continue
            raise ValueError(
                f"bad fault clause {clause!r}; expected "
                f"kind@round.chunk[:param][xN], kind@sSHARD[:param][xN], "
                f"kind%rate[:param], or seed=N with kind in {KINDS}")
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """$REPRO_FAULTS, parsed; None when unset/empty/'off'."""
        env = os.environ.get("REPRO_FAULTS", "").strip()
        if not env or env.lower() in ("0", "off"):
            return None
        return cls.parse(env)

    # -- drawing -------------------------------------------------------------

    def _coin(self, idx: int, round: int, chunk: int) -> float:
        """Deterministic uniform draw in [0, 1) for one coordinate."""
        h = zlib.crc32(f"{self.seed}:{idx}:{round}:{chunk}".encode())
        return (h & 0xFFFFFFFF) / 2.0 ** 32

    def draw(self, round: int, chunk: int,
             attempt: int = 1) -> FaultSpec | None:
        """The fault to inject into this dispatch, if any.

        Called once per (round, chunk, attempt) by the runtime; the
        first matching clause wins and is tallied in ``fired``.
        Shard-addressed clauses never match here (see
        :meth:`draw_shard`).
        """
        for idx, s in enumerate(self.specs):
            if s.shard is not None:
                continue
            if s.rate is not None:
                if attempt <= s.times and self._coin(idx, round,
                                                     chunk) < s.rate:
                    break
            elif (s.round in (None, round) and s.chunk in (None, chunk)
                    and attempt <= s.times):
                break
        else:
            return None
        self.fired[s.kind] = self.fired.get(s.kind, 0) + 1
        return s

    def draw_shard(self, shard: int, attempt: int = 1) -> FaultSpec | None:
        """The fault to inject into one shard-engine dispatch, if any.

        The sharding layer calls this once per (shard, attempt); only
        shard-addressed clauses participate, so chunk-level plans run
        untouched under sharding (shard workers drawing chunk faults
        from their own contexts) and shard plans never perturb chunk
        rounds.
        """
        for s in self.specs:
            if s.shard is not None and s.shard in ("*", shard) \
                    and attempt <= s.times:
                break
        else:
            return None
        self.fired[s.kind] = self.fired.get(s.kind, 0) + 1
        return s

    def describe(self) -> dict:
        """JSON-friendly digest (carried on ``ColoringResult.faults``)."""
        return {"clauses": len(self.specs), "seed": self.seed,
                "fired": dict(self.fired)}


# -- injection application ----------------------------------------------------

def apply_fault(spec: FaultSpec) -> None:
    """Apply a drawn fault on the coordinator side (serial/threaded).

    ``delay`` sleeps and returns — the chunk then runs normally;
    ``error`` raises :class:`FaultInjected`; ``kill`` raises
    :class:`WorkerDeath` (the simulated death the runtime routes
    through its pool-failure path).
    """
    if spec.kind == "delay":
        time.sleep(spec.param or DEFAULT_DELAY)
        return
    if spec.kind == "kill":
        raise WorkerDeath("injected worker death")
    raise FaultInjected("injected chunk fault")


def worker_apply(spec: FaultSpec) -> None:
    """Apply a shipped fault inside a process-pool worker.

    ``kill`` is real here: the worker exits without cleanup, the pool
    breaks, and the coordinator sees ``BrokenProcessPool`` — exactly
    the signature of an OOM-killed or segfaulted worker.
    """
    if spec.kind == "kill":
        os._exit(1)
    apply_fault(spec)


# -- environment knobs --------------------------------------------------------

def resolve_fault_plan(faults) -> FaultPlan | None:
    """Resolve the ``faults=`` argument of an ExecutionContext.

    A :class:`FaultPlan` is used as-is; a string is parsed; ``None``
    defers to ``$REPRO_FAULTS``; ``False`` forces injection off.
    """
    if faults is None:
        return FaultPlan.from_env()
    if faults is False:
        return None
    if isinstance(faults, FaultPlan):
        return faults if faults else None
    if isinstance(faults, str):
        plan = FaultPlan.parse(faults)
        return plan if plan else None
    raise TypeError(f"faults must be a FaultPlan, str, False, or None; "
                    f"got {type(faults).__name__}")


def _env_number(name: str, default, cast, minimum):
    env = os.environ.get(name, "").strip()
    if not env:
        return default
    try:
        value = cast(env)
    except ValueError:
        raise ValueError(f"${name} must be a {cast.__name__}, "
                         f"got {env!r}") from None
    if value < minimum:
        raise ValueError(f"${name} must be >= {minimum}, got {value}")
    return value


def default_retries() -> int:
    """Per-chunk retry budget: $REPRO_RETRIES, else 2."""
    return _env_number("REPRO_RETRIES", 2, int, 0)


def default_backoff() -> float:
    """Retry backoff base seconds: $REPRO_BACKOFF, else 0.02."""
    return _env_number("REPRO_BACKOFF", 0.02, float, 0.0)


def default_round_timeout() -> float | None:
    """Per-round deadline seconds: $REPRO_ROUND_TIMEOUT, else off.

    Unset, empty, or ``0`` disables the deadline.
    """
    value = _env_number("REPRO_ROUND_TIMEOUT", None, float, 0.0)
    return None if not value else value


def default_max_respawns() -> int:
    """Pool-respawn budget before degradation: $REPRO_RESPAWNS, else 2."""
    return _env_number("REPRO_RESPAWNS", 2, int, 0)
