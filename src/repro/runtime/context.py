"""ExecutionContext: the unified per-run execution runtime.

Every algorithm in this library is a sequence of *parallel rounds* over
NumPy arrays.  An :class:`ExecutionContext` bundles everything one run
needs to execute those rounds and account for them:

- a ``backend`` switch (``'serial'``, ``'threaded'`` or ``'process'``)
  with a worker count (argument, else ``$REPRO_WORKERS``, else the CPU
  count);
- the chunked execution machinery (:mod:`repro.machine.parallel`, the
  shared-memory arena and worker pool of :mod:`repro.runtime.shm`)
  behind one :meth:`map_chunks` seam, with optional *work-balanced*
  chunking: engines pass per-item weights (frontier degrees, batch
  degrees) and chunk boundaries come from a prefix-sum split of total
  weight instead of an even split by count;
- *adaptive round dispatch* (:mod:`repro.runtime.adaptive`): on the
  parallel backends each multi-chunk round passes a break-even test —
  an online overhead estimator (per-chunk dispatch cost per backend,
  kernel seconds per work unit, both EWMA-updated and seeded by a
  one-shot calibration) decides whether the round is worth shipping to
  the pool or cheaper to run inline on the coordinator over the same
  chunk plan (``$REPRO_ADAPTIVE``; decisions are counted, traced, and
  summarized by :meth:`dispatch_record`);
- fault tolerance at the same seam (:mod:`repro.runtime.faults`):
  per-chunk retry with capped exponential backoff, a per-round deadline
  that cancels stragglers, dead-worker detection with pool respawn and
  re-dispatch of only the lost chunks, and graceful backend degradation
  (process -> threaded -> serial) once the respawn budget is spent;
- the :class:`~repro.machine.costmodel.CostModel` and
  :class:`~repro.machine.memmodel.MemoryModel` accounting books;
- per-phase wall-clock timers (:meth:`phase`), recording *exclusive*
  (self) time so nested phases never double-count;
- a run tracer (:mod:`repro.obs`): span events per phase, per-chunk
  events with worker ids and an imbalance summary per chunked round,
  and the per-round metric series engines emit.  The default is the
  no-op null tracer — every traced code path branches on
  ``tracer.enabled``, so an untraced run executes exactly the
  pre-tracing instructions.

The contract every engine written against this context obeys: the
parallel backends chunk each round over independent spans and combine
the partial results in deterministic chunk order, so colors, waves, and
the recorded work/depth/memory totals are **bit-identical** to the
serial backend — for any worker count, with weighted chunking on or
off, and under any recovery the fault layer performs.  Chunk kernels
are *pure* (all mutation happens on the coordinator, between rounds, in
chunk order), so re-running a failed chunk, re-dispatching a dead
worker's chunks, or finishing a round on a degraded backend recomputes
exactly the same partial results.  On the serial backend
:meth:`map_chunks` degrades to a single chunk — zero chunking
overhead, exactly the monolithic vectorized round.  Tracing is
observation only: enabling it never changes results or accounting.

Backends:

- ``'serial'`` — one inline chunk per round.
- ``'threaded'`` — a shared :class:`ThreadPoolExecutor`; NumPy kernels
  release the GIL, so chunks overlap inside the C kernels.
- ``'process'`` — a persistent forkserver worker pool plus a
  :class:`~repro.runtime.shm.SharedArena`: the graph and per-run state
  arrays live in shared memory with zero-copy views on both sides, and
  engines describe each round as a picklable
  :class:`~repro.runtime.kernels.Kernel` descriptor (module-level
  kernel + array names + scalars) instead of a closure.  True
  parallelism — no GIL — at the cost of pickling each chunk's result.

Serial and threaded accept plain ``fn(lo, hi)`` closures; the process
backend requires the descriptor form (every engine in this library
passes descriptors, which the other backends simply call inline).

Recovery policy (see DESIGN.md for the full argument):

- A chunk that raises is retried up to ``retries`` times
  (``$REPRO_RETRIES``, default 2) with capped exponential backoff
  (``backoff * 2**(attempt-1)`` seconds, capped at 1s); exhaustion
  raises :class:`ChunkError` naming the (round, chunk) coordinates.
- With a ``round_timeout`` (``$REPRO_ROUND_TIMEOUT``), each dispatch
  wave of a round gets that deadline; stragglers are cancelled,
  counted as ``fault.timeouts``, and retried against the same budget.
- A dead worker (``BrokenProcessPool`` on the process backend, the
  injected :class:`~repro.runtime.faults.WorkerDeath` elsewhere) tears
  the pool down; it is respawned up to ``max_respawns`` times
  (``$REPRO_RESPAWNS``, default 2), then the run *degrades* one
  backend level (process -> threaded -> serial) and finishes there.
  Only the lost chunks are re-dispatched — completed partial results
  and the round's chunk boundaries are kept, so the combine order
  never changes.
- Everything is recorded: ``fault.*`` counters in the metrics
  registry, instant events in the tracer, and the
  :meth:`fault_record` digest engines attach to ``ColoringResult``.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
from concurrent.futures import ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, TypeVar

from ..machine.costmodel import CostModel
from ..machine.memmodel import MemoryModel
from ..machine.parallel import (
    default_workers,
    split_chunks,
    split_chunks_weighted,
)
from ..obs import resolve_tracer
from ..obs.ledger import resolve_ledger, run_record
from ..obs.resources import (
    ResourceSampler,
    merge_worker_probes,
    resolve_resources,
)
from ..primitives.kernels import ScratchArena
from ..primitives.tiers import resolve_kernel_tier, set_kernel_tier
from .adaptive import (
    DispatchEstimator,
    effective_parallelism,
    resolve_adaptive,
)
from .faults import (
    WorkerDeath,
    apply_fault,
    default_backoff,
    default_max_respawns,
    default_retries,
    default_round_timeout,
    resolve_fault_plan,
)
from .kernels import Kernel
from .shard import default_shards
from .shm import (
    SharedArena,
    create_pool,
    live_segment_bytes,
    run_kernel_task,
    worker_probe,
)

T = TypeVar("T")

BACKENDS = ("serial", "threaded", "process")

#: Chunks per worker: oversubscription smooths load imbalance between
#: spans (frontier vertices have wildly varying degrees).
CHUNKS_PER_WORKER = 4

#: Cap on one retry-backoff sleep, seconds.
MAX_BACKOFF = 1.0

#: "Not computed yet" marker in a round's partial-result slots (chunk
#: kernels may legitimately return None).
_PENDING = object()


class ChunkError(RuntimeError):
    """A chunk of a :meth:`ExecutionContext.map_chunks` round failed
    for good.

    Raised only after the retry budget is exhausted (or a straggler
    outlives the round deadline on its last attempt); the message names
    the round id, the chunk id, and the chunk's ``[lo, hi)`` range, and
    the original exception is chained.  Remaining futures of the wave
    are cancelled (pending) or drained (running) before this is raised,
    so no worker outlives the call and no stale chunk can write into a
    later round.
    """


def default_backend() -> str:
    """Backend: $REPRO_BACKEND if set (and valid), else 'serial'."""
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not env:
        return "serial"
    if env not in BACKENDS:
        raise ValueError(f"$REPRO_BACKEND must be one of {BACKENDS}, "
                         f"got {env!r}")
    return env


def default_weighted_chunks() -> bool:
    """Weighted chunking: $REPRO_WEIGHTED_CHUNKS if set, else on.

    Weighted chunking never changes results (only chunk boundaries),
    so it defaults on; the switch exists for A/B benchmarking and for
    bisecting imbalance regressions.
    """
    env = os.environ.get("REPRO_WEIGHTED_CHUNKS", "").strip().lower()
    if not env:
        return True
    if env in ("0", "off", "false", "no"):
        return False
    if env in ("1", "on", "true", "yes"):
        return True
    raise ValueError(f"$REPRO_WEIGHTED_CHUNKS must be a boolean flag "
                     f"(1/0/on/off), got {env!r}")


class ExecutionContext:
    """One object carrying backend, pool, accounting, timers, tracer,
    and the fault-recovery state of a run.

    Parameters
    ----------
    backend:
        ``'serial'``, ``'threaded'`` or ``'process'``; ``None``
        resolves via :func:`default_backend` (``$REPRO_BACKEND``, else
        serial).  Read it back through the :attr:`backend` property:
        after a degradation it reports the backend the run is *now*
        executing on.
    workers:
        Worker count for the parallel backends; ``None`` resolves via
        ``$REPRO_WORKERS``, else the CPU count.  Forced to 1 on the
        serial backend.
    weighted_chunks:
        Honor per-round ``weights`` in :meth:`map_chunks` (work-
        proportional chunk boundaries); ``None`` resolves via
        ``$REPRO_WEIGHTED_CHUNKS``, else on.  Results are identical
        either way — only the chunk boundaries (and the load balance)
        move.
    cost, mem:
        Accounting books to record into; fresh models when ``None``.
    crew:
        Passed to a freshly created :class:`CostModel` (CREW charging
        for scatter primitives).
    trace:
        A :class:`~repro.obs.Tracer`, a sink path, ``True`` (in-memory),
        ``False`` (off), or ``None`` to defer to ``$REPRO_TRACE`` — see
        :func:`repro.obs.resolve_tracer`.  Defaults to the zero-overhead
        null tracer.
    faults:
        A :class:`~repro.runtime.faults.FaultPlan`, a plan string
        (``"error@3.0;kill@5.*;seed=7"``), ``False`` (injection off),
        or ``None`` to defer to ``$REPRO_FAULTS`` — see
        :func:`repro.runtime.faults.resolve_fault_plan`.
    retries, backoff, round_timeout, max_respawns:
        Recovery budgets; ``None`` resolves via ``$REPRO_RETRIES``
        (2), ``$REPRO_BACKOFF`` (0.02s), ``$REPRO_ROUND_TIMEOUT``
        (off; pass 0 to force off), ``$REPRO_RESPAWNS`` (2).
    adaptive:
        Adaptive round dispatch (:mod:`repro.runtime.adaptive`):
        ``'on'`` (break-even estimator inlines rounds too small to
        amortize dispatch overhead), ``'off'`` (always dispatch — the
        pre-adaptive behavior), or the forced modes ``'inline'`` /
        ``'parallel'``; booleans map to on/off and ``None`` resolves
        via ``$REPRO_ADAPTIVE``, else on.  Results are bit-identical
        in every mode — the decision moves scheduling only.
    shards:
        Shard count for the sharding layer (:mod:`repro.runtime.shard`):
        engines that support sharded execution (the DEC family) split
        the run into this many per-shard engines.  ``None`` resolves
        via ``$REPRO_SHARDS``; 0 (the default) and 1 mean unsharded.
        Like the backend, the knob is run-wide (carried on the pool
        host) and readable through the :attr:`shards` property;
        :meth:`sharded` flips it fluently.  Colors are shard-count
        independent — the boundary-repair protocol restores exactly
        the engine's quality bound.
    ledger:
        The flight recorder (:mod:`repro.obs.ledger`): a
        :class:`~repro.obs.ledger.Ledger`, a JSONL path, ``True``
        (default ``results/ledger.jsonl``), ``False`` (off), or
        ``None`` to defer to ``$REPRO_LEDGER``.  Defaults to the
        zero-overhead null ledger; when enabled, engine entry points
        that *own* their context append one schema-versioned run
        record on completion (:meth:`ledger_record`).  Run-wide,
        carried on the pool host.
    resources:
        Resource telemetry (:mod:`repro.obs.resources`): ``True``
        starts a coordinator sampler thread (peak RSS, CPU, live
        arena bytes) and enables per-worker probes; ``False`` forces
        it off; ``None`` defers to ``$REPRO_RESOURCES`` and, when
        that is silent too, follows the ledger (telemetry on iff the
        run is being recorded).  Digest via :meth:`resource_record`.

    The context is a context manager; the thread pool is created lazily
    on first threaded :meth:`map_chunks` and shut down by
    :meth:`close` / ``__exit__`` (which also flushes a path-bound
    tracer).  :meth:`child` derives a context with fresh accounting
    books that *shares* the pool, the tracer, and the fault state (used
    to account an ordering phase separately from the coloring phase of
    one run: round ids and recovery budgets are run-wide).
    """

    def __init__(self, backend: str | None = None, workers: int | None = None,
                 cost: CostModel | None = None, mem: MemoryModel | None = None,
                 crew: bool = False, trace=None,
                 weighted_chunks: bool | None = None,
                 faults=None, retries: int | None = None,
                 backoff: float | None = None,
                 round_timeout: float | None = None,
                 max_respawns: int | None = None,
                 adaptive=None,
                 shards: int | None = None,
                 kernel_tier: str | None = None,
                 ledger=None, resources=None,
                 _pool_host: "ExecutionContext | None" = None):
        # The host carries the run-wide state (pool, arena, backend,
        # fault budgets, round counter); set it before anything that
        # reads the `backend` property.
        self._pool_host = _pool_host if _pool_host is not None else self
        resolved = backend if backend is not None else default_backend()
        if resolved not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {resolved!r}")
        self._backend = resolved
        if self._pool_host is self:
            # Resolve the run's kernel tier (argument > $REPRO_KERNEL_TIER
            # > auto) and make it the process-global active tier now, so
            # any one-shot calibration the adaptive layer runs measures
            # the tier the run will actually execute.
            self._kernel_tier = resolve_kernel_tier(kernel_tier)
            set_kernel_tier(self._kernel_tier)
        if resolved == "serial":
            self.workers = 1
        else:
            self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.weighted_chunks = weighted_chunks if weighted_chunks is not None \
            else default_weighted_chunks()
        self.adaptive = resolve_adaptive(adaptive)
        self.cost = cost if cost is not None else CostModel(crew=crew)
        self.mem = mem if mem is not None else MemoryModel()
        self.wall_by_phase: dict[str, float] = {}
        self.tracer = resolve_tracer(trace)
        if self.tracer.enabled:
            self.tracer.meta.setdefault("backend", self.backend)
            self.tracer.meta.setdefault("workers", self.workers)
            self.tracer.meta.setdefault("adaptive", self.adaptive)
            self.tracer.meta.setdefault("kernel_tier", self.kernel_tier)
        self._pool: ThreadPoolExecutor | None = None
        self._procpool = None
        self._arena: SharedArena | None = None
        # Open-phase stack: [name, child_wall_seconds] frames, for
        # exclusive timing and for labeling traced rounds.
        self._phase_stack: list[list] = []
        if self._pool_host is self:
            self._faultplan = resolve_fault_plan(faults)
            self._retries = retries if retries is not None \
                else default_retries()
            self._backoff = backoff if backoff is not None \
                else default_backoff()
            self._round_timeout = default_round_timeout() \
                if round_timeout is None else (round_timeout or None)
            self._max_respawns = max_respawns if max_respawns is not None \
                else default_max_respawns()
            if self._retries < 0:
                raise ValueError(f"retries must be >= 0, "
                                 f"got {self._retries}")
            if self._backoff < 0:
                raise ValueError(f"backoff must be >= 0, "
                                 f"got {self._backoff}")
            if self._max_respawns < 0:
                raise ValueError(f"max_respawns must be >= 0, "
                                 f"got {self._max_respawns}")
            self._fault_stats: dict[str, int] = {}
            self._fault_events: list[dict] = []
            self._respawns = 0
            self._round_seq = 0
            self._estimator = DispatchEstimator() \
                if self.adaptive != "off" else None
            self._scratch = ScratchArena()
            self._shards = shards if shards is not None else default_shards()
            if self._shards < 0:
                raise ValueError(f"shards must be >= 0, "
                                 f"got {self._shards}")
            self._ledger = resolve_ledger(ledger)
            res_on = resolve_resources(resources)
            self._resources_on = self._ledger.enabled \
                if res_on is None else res_on
            self._sampler: ResourceSampler | None = None
            if self._resources_on:
                self._sampler = ResourceSampler(
                    tracer=self.tracer,
                    arena_bytes=live_segment_bytes).start()

    @property
    def shards(self) -> int:
        """The run's shard count (0/1 = unsharded) — run-wide, like
        the backend."""
        return self._pool_host._shards

    def sharded(self, n_shards: int) -> "ExecutionContext":
        """Set the run-wide shard count; returns ``self`` for fluent
        use: ``ExecutionContext(backend='process').sharded(4)``."""
        if n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {n_shards}")
        self._pool_host._shards = n_shards
        return self

    @property
    def backend(self) -> str:
        """The backend the run executes on *now* — run-wide, so a
        degradation in any context of the run (ordering child, coloring
        parent) is visible everywhere."""
        return self._pool_host._backend

    @property
    def kernel_tier(self) -> str:
        """The run's *resolved* kernel tier ('numpy' or 'numba', never
        'auto') — run-wide, like the backend."""
        return self._pool_host._kernel_tier

    @property
    def ledger(self):
        """The run's flight-recorder ledger (run-wide; the null ledger
        when recording is off)."""
        return self._pool_host._ledger

    @property
    def scratch(self) -> ScratchArena:
        """The run's coordinator-side scratch arena: reusable buffers
        for the per-round intermediates engines build *between* chunk
        rounds (wave weights, successor concatenations, batch unions).
        Run-wide and single-threaded — only the coordinator touches it;
        kernels running on workers use their own per-thread arena
        (:func:`repro.runtime.kernels.scratch`)."""
        return self._pool_host._scratch

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ledger_record(self, result, graph=None, *, kind: str = "run",
                      eps: float | None = None, valid: bool | None = None,
                      extra: dict | None = None):
        """Append one run record to the ledger; no-op (returning
        ``None``) when recording is off.

        Called by engine entry points that *own* their context — the
        owner-append rule keeps exactly one record per run however many
        engines and child contexts the run composes.
        """
        host = self._pool_host
        if not host._ledger.enabled:
            return None
        return host._ledger.append(run_record(result, graph=graph,
                                              kind=kind, eps=eps,
                                              valid=valid, extra=extra))

    def resource_record(self, workers=None) -> dict | None:
        """The run's resource digest: coordinator sampler maxima plus
        deduped per-worker probes.  ``None`` when telemetry is off.

        ``workers`` is an optional iterable of extra worker rows (the
        sharded path passes per-shard pid/RSS rows); live pool workers
        are additionally probed in place.
        """
        host = self._pool_host
        if not host._resources_on or host._sampler is None:
            return None
        probes = list(workers or [])
        probes += host._probe_workers()
        return {"coordinator": host._sampler.digest(),
                "workers": merge_worker_probes(probes)}

    def _probe_workers(self) -> list[dict]:
        """Probe the live process pool's workers (best effort).

        Submits a few more probe tasks than workers — pool scheduling
        is not round-robin, so extras raise the odds every worker
        answers at least once; duplicates merge away by pid.
        """
        host = self._pool_host
        if host._procpool is None:
            return []
        futures = [host._procpool.submit(worker_probe)
                   for _ in range(2 * self.workers)]
        out = []
        for fut in futures:
            try:
                out.append(fut.result(timeout=5.0))
            except Exception:  # pragma: no cover - dead/respawning pool
                pass
        return out

    def close(self) -> None:
        """Shut down pools and the shared arena, and flush a path-bound
        tracer (only if this context is the pool host)."""
        if self._pool_host is self:
            if self._sampler is not None:
                self._sampler.stop()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._procpool is not None:
                self._procpool.shutdown(wait=True)
                self._procpool = None
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            self.tracer.flush()

    def reset_books(self) -> None:
        """Zero the cost/mem books and phase timers, keep the machinery.

        The service layer calls this between requests so one long-lived
        context (pools, arena, kernel tier, fault budgets all persist)
        yields per-request accounting instead of a running total.
        """
        self.cost = CostModel(crew=self.cost.crew)
        self.mem = MemoryModel()
        self.wall_by_phase = {}

    def child(self, cost: CostModel | None = None,
              mem: MemoryModel | None = None,
              crew: bool = False) -> "ExecutionContext":
        """Same backend/workers/pool/arena/tracer/fault state, fresh
        books and timers."""
        return ExecutionContext(backend=self.backend, workers=self.workers,
                                cost=cost, mem=mem, crew=crew,
                                trace=self.tracer,
                                weighted_chunks=self.weighted_chunks,
                                adaptive=self.adaptive,
                                _pool_host=self._pool_host)

    def _acquire_pool(self) -> ThreadPoolExecutor | None:
        host = self._pool_host
        if host._pool is None and self.backend == "threaded" \
                and self.workers > 1:
            host._pool = ThreadPoolExecutor(max_workers=self.workers)
        return host._pool

    def _acquire_procpool(self):
        host = self._pool_host
        if host._procpool is None:
            host._procpool = create_pool(self.workers,
                                         kernel_tier=self.kernel_tier)
        return host._procpool

    def _acquire_arena(self) -> SharedArena:
        host = self._pool_host
        if host._arena is None:
            host._arena = SharedArena()
        return host._arena

    # -- shared state (process backend) --------------------------------------

    def share(self, ns: str, name: str, arr):
        """Adopt a per-run state array into the shared arena.

        On the process backend the array is copied once into shared
        memory and the *shared view* comes back: the engine keeps
        reading and writing through it, workers see every coordinator
        write with no further transfer, and :meth:`map_chunks` ships
        only the array's name.  On every other backend (or with one
        worker) the array is returned unchanged — the call is free.

        Arrays an engine rebuilds every round (frontiers, batches) need
        no ``share``: :meth:`map_chunks` uploads them per round.

        Arena views stay valid across a degradation (the arena lives
        until :meth:`close`), so an engine that shared its state on the
        process backend keeps running unchanged after a mid-run
        degradation to threaded or serial.
        """
        if self.backend != "process" or self.workers <= 1:
            return arr
        return self._acquire_arena().put(f"{ns}:{name}", arr)

    def localize(self, arr):
        """A private copy when ``arr`` is an arena view, else ``arr``.

        Call on any shared array that outlives the run (result colors):
        the arena's segments are unlinked by :meth:`close`.
        """
        host = self._pool_host
        if host._arena is not None and host._arena.owns(arr):
            return arr.copy()
        return arr

    # -- execution -----------------------------------------------------------

    def map_chunks(self, fn: Callable[[int, int], T], n: int,
                   weights=None) -> list[T]:
        """Run ``fn(lo, hi)`` over a chunking of range(n), in chunk order.

        Serial backend (or 1 worker): one chunk, executed inline — the
        call is exactly ``[fn(0, n)]``.  Parallel backends: balanced
        chunks on the shared pool; results are returned in chunk order,
        so order-dependent combines are deterministic.

        ``weights`` (per-item non-negative work estimates, e.g. the
        frontier's vertex degrees) switches the chunk boundaries to a
        prefix-sum split of total weight — work-balanced chunks for
        skewed inputs.  Ignored on the serial path, when
        ``weighted_chunks`` is off, or when all weights are zero;
        results are bit-identical in every case because only the
        boundaries move, never the combine order.

        On the process backend ``fn`` must be a
        :class:`~repro.runtime.kernels.Kernel` descriptor (serial and
        threaded accept descriptors too and just call them).

        ``fn`` must be *pure over [lo, hi)* — it may read shared state
        but must not mutate it (every engine in this library combines
        chunk results on the coordinator).  That purity is what makes
        recovery invisible: a failed chunk is retried with backoff, a
        dead worker's chunks are re-dispatched after a pool respawn (or
        on a degraded backend), stragglers past the round deadline are
        cancelled and re-run — and the returned list is bit-identical
        to the undisturbed run.  Only when the retry budget is spent
        does the round abort as a :class:`ChunkError` naming the
        (round, chunk) coordinates; the wave's pending chunks are
        cancelled and running ones drained before the error propagates.
        """
        host = self._pool_host
        host._round_seq += 1
        rid = host._round_seq
        tracer = self.tracer
        if not tracer.enabled:
            return self._run_round(fn, n, weights, rid, None)
        # Traced twin: per-chunk span events (worker id, chunk size)
        # plus one round event with the max/mean chunk-wall imbalance.
        # Results are identical — tracing only observes.
        phase = self._phase_stack[-1][0] if self._phase_stack else None
        records: list[tuple] = []  # GIL-atomic appends from workers
        t0 = tracer.now()
        out = self._run_round(fn, n, weights, rid, records)
        t1 = tracer.now()
        walls = []
        for lo, hi, c0, c1, ident in sorted(records):
            tracer.record(f"chunk[{lo}:{hi})", "chunk", c0, c1, tid=ident,
                          round=rid, size=hi - lo, phase=phase)
            walls.append(c1 - c0)
        self._record_round(rid, phase, t0, t1, n, walls)
        return out

    def _plan_chunks(self, n: int, weights) -> list[tuple[int, int]]:
        if self.backend == "serial" or self.workers <= 1:
            return split_chunks(n, 1)
        target = self.workers * CHUNKS_PER_WORKER
        if weights is not None and self.weighted_chunks:
            return split_chunks_weighted(n, target, weights)
        return split_chunks(n, target)

    def _run_round(self, fn, n: int, weights, rid: int,
                   records: list | None) -> list:
        """One round: dispatch waves until every chunk has a result.

        The chunk boundaries are planned once, on the backend the round
        started on, and never move afterwards — recovery (retry waves,
        pool respawns, even a mid-round degradation) re-dispatches the
        *same* spans, so partial results combine in the same order.

        With adaptive dispatch (the default), a multi-chunk round on a
        parallel backend first passes through the break-even decision
        (:mod:`repro.runtime.adaptive`): a round predicted too small to
        amortize its dispatch overhead runs inline on the coordinator —
        over the *same* chunk plan, drawing faults at the same
        (round, chunk, attempt) coordinates — so the decision moves
        scheduling only, never results.
        """
        chunks = self._plan_chunks(n, weights)
        if not chunks:
            return []
        host = self._pool_host
        # Re-assert the run's tier each round (a cheap no-op while it
        # is already active): two interleaved contexts with different
        # tiers in one process each execute under their own.
        set_kernel_tier(host._kernel_tier)
        est = host._estimator
        backend0 = self.backend
        if backend0 == "process" and self.workers > 1 and len(chunks) > 1 \
                and not isinstance(fn, Kernel):
            # The contract holds whatever the dispatch decision: an
            # inlined round today may dispatch tomorrow on a bigger box.
            raise TypeError(
                "the process backend runs picklable kernel "
                "descriptors, not closures: pass a "
                "repro.runtime.kernels.Kernel to map_chunks "
                "(serial/threaded accept any callable)")
        eligible = est is not None and backend0 != "serial" \
            and self.workers > 1 and len(chunks) > 1
        inline = False
        p_eff = 1
        units = 0.0
        # The estimator's EWMA unit costs are tier-specific (a fused
        # numba kernel has a very different s/unit than its NumPy
        # form), so break-even decisions re-learn after a tier switch.
        key = fn.name if isinstance(fn, Kernel) \
            else getattr(fn, "__name__", None)
        if key is not None:
            key = f"{key}@{host._kernel_tier}"
        if eligible:
            units = float(np.sum(weights)) if weights is not None \
                else float(n)
            p_eff = effective_parallelism(self.workers, len(chunks))
            inline = self._decide_dispatch(backend0, key, units,
                                           len(chunks), p_eff, rid)
        measure = eligible and self.adaptive == "on"
        ktimes: list | None = [] if measure else None
        t0 = time.perf_counter() if measure else 0.0
        # Fused inline fast path: chunk results combine to the same
        # value whatever the boundaries (the serial backend's 1-chunk
        # plan is already bit-identical to the pooled plans), so with
        # no fault plan pinning (round, chunk) coordinates an inlined
        # round runs as one span — no futures, no specs, no wave
        # machinery, no per-chunk invocation tax.  A fault plan keeps
        # the per-chunk loop below so injections keep firing at the
        # same coordinates they would under dispatch.
        if inline and host._faultplan is None:
            try:
                fused = [self._call_chunk(fn, 0, n, None, records, ktimes)]
            except Exception:
                # Re-run through the wave machinery so retry semantics
                # and ChunkError reporting match the dispatched path
                # (map_chunks requires chunks to be retry-safe).
                pass
            else:
                if measure:
                    est.observe_round(backend0, key, len(chunks), units,
                                      time.perf_counter() - t0,
                                      sum(ktimes), len(ktimes), inline,
                                      p_eff)
                return fused
        results = [_PENDING] * len(chunks)
        attempts = [0] * len(chunks)
        todo = list(range(len(chunks)))
        while todo:
            wave, todo = todo, []
            backend = self.backend
            pooled = not inline and backend != "serial" \
                and self.workers > 1 and len(chunks) > 1
            if pooled and backend == "process":
                if not isinstance(fn, Kernel):
                    raise TypeError(
                        "the process backend runs picklable kernel "
                        "descriptors, not closures: pass a "
                        "repro.runtime.kernels.Kernel to map_chunks "
                        "(serial/threaded accept any callable)")
                dead = self._wave_process(fn, chunks, wave, todo, results,
                                          attempts, n, rid, records, ktimes)
            elif pooled:
                dead = self._wave_threaded(fn, chunks, wave, todo, results,
                                           attempts, n, rid, records, ktimes)
            else:
                dead = self._wave_inline(fn, chunks, wave, results,
                                         attempts, n, rid, records, ktimes)
            if dead:
                self._pool_failure(rid)
        if measure:
            est.observe_round(backend0, key, len(chunks), units,
                              time.perf_counter() - t0, sum(ktimes),
                              len(ktimes), inline, p_eff)
        return results

    def _decide_dispatch(self, backend: str, key, units: float,
                         n_chunks: int, p_eff: int, rid: int) -> bool:
        """Inline this round?  Forced modes answer directly; ``on``
        consults the estimator (seeding it on first contact — the
        process pool is never spun up just to calibrate, it keeps a
        static seed until real dispatches refine it)."""
        host = self._pool_host
        est = host._estimator
        mode = self.adaptive
        if mode == "inline":
            inline = True
        elif mode == "parallel":
            inline = False
        else:
            est.seed_unit()
            if backend not in est.dispatch_s:
                pool = None
                if backend == "threaded":
                    pool = self._acquire_pool()
                elif backend == "process":
                    pool = host._procpool
                est.seed_dispatch(backend, pool)
            inline = est.should_inline(backend, key, units, n_chunks, p_eff)
        est.decisions["inline" if inline else "parallel"] += 1
        if self.tracer.enabled:
            self.tracer.count(
                "dispatch.inline" if inline else "dispatch.parallel",
                1, round=rid)
        return inline

    def _call_chunk(self, fn, lo: int, hi: int, fault, records, ktimes):
        if fault is not None:
            apply_fault(fault)
        if records is None and ktimes is None:
            return fn(lo, hi)
        # Traced rounds stamp on the tracer's clock (same monotonic
        # base); untraced measured rounds only need durations.
        c0 = self.tracer.now() if records is not None \
            else time.perf_counter()
        res = fn(lo, hi)
        c1 = self.tracer.now() if records is not None \
            else time.perf_counter()
        if records is not None:
            records.append((lo, hi, c0, c1, threading.get_ident()))
        if ktimes is not None:
            ktimes.append(c1 - c0)
        return res

    def _wave_inline(self, fn, chunks, wave, results, attempts,
                     n: int, rid: int, records, ktimes) -> bool:
        """Inline wave (serial backend, 1 worker, a 1-chunk round, or a
        round adaptive dispatch kept on the coordinator): each chunk
        retries in place.  An injected WorkerDeath has no pool to kill
        here, so it consumes retry budget like any other chunk failure
        — the bottom of the degradation ladder."""
        for ci in wave:
            lo, hi = chunks[ci]
            while True:
                attempts[ci] += 1
                fault = self._draw_fault(rid, ci, attempts[ci])
                try:
                    results[ci] = self._call_chunk(fn, lo, hi, fault,
                                                   records, ktimes)
                    break
                except Exception as exc:
                    self._retry_or_raise(ci, chunks[ci], attempts[ci],
                                         n, rid, exc)
        return False

    def _wave_threaded(self, fn, chunks, wave, todo, results, attempts,
                       n: int, rid: int, records, ktimes) -> bool:
        pool = self._acquire_pool()
        futs = {}
        for ci in wave:
            attempts[ci] += 1
            fault = self._draw_fault(rid, ci, attempts[ci])
            lo, hi = chunks[ci]
            futs[pool.submit(self._call_chunk, fn, lo, hi, fault,
                             records, ktimes)] = ci
        return self._collect_wave(futs, chunks, todo, results, attempts,
                                  n, rid, broken=WorkerDeath,
                                  finish=results.__setitem__)

    def _wave_process(self, kern: Kernel, chunks, wave, todo, results,
                      attempts, n: int, rid: int, records, ktimes) -> bool:
        """Ship a kernel descriptor's chunks to the worker pool.

        Arrays are adopted into the shared arena first: zero-copy for
        arrays the engine holds as arena views (see :meth:`share`), one
        memcpy for per-round arrays.  Workers receive only the kernel
        name, the array specs, the scalars, the chunk bounds, and (for
        chaos runs) the fault directive drawn for this dispatch.
        """
        pool = self._acquire_procpool()
        arena = self._acquire_arena()
        specs = {key: arena.adopt(f"{kern.ns}:{key}", arr)
                 for key, arr in kern.arrays.items()}
        timed = records is not None or ktimes is not None
        if timed:
            # Workers time with perf_counter; anchor their absolute
            # stamps to this tracer's epoch (same monotonic clock).
            epoch = time.perf_counter() - self.tracer.now() \
                if records is not None else 0.0

            def finish(ci, packed):
                res, c0, c1, pid = packed
                if records is not None:
                    lo, hi = chunks[ci]
                    records.append((lo, hi, c0 - epoch, c1 - epoch, pid))
                if ktimes is not None:
                    ktimes.append(c1 - c0)
                results[ci] = res
        else:
            finish = results.__setitem__
        futs = {}
        dead = False
        for i, ci in enumerate(wave):
            attempts[ci] += 1
            fault = self._draw_fault(rid, ci, attempts[ci])
            lo, hi = chunks[ci]
            try:
                futs[pool.submit(run_kernel_task, kern.name, specs,
                                 kern.scalars, lo, hi, timed, fault,
                                 kern.tier or self.kernel_tier)] = ci
            except BrokenProcessPool:
                # A worker death can be noticed *while* the wave is
                # still being submitted; requeue this chunk and every
                # unsubmitted sibling, then collect what got out.
                dead = True
                todo.extend(wave[i:])
                break
        return self._collect_wave(futs, chunks, todo, results, attempts,
                                  n, rid, broken=BrokenProcessPool,
                                  finish=finish) or dead

    def _collect_wave(self, futs, chunks, todo, results, attempts,
                      n: int, rid: int, broken, finish) -> bool:
        """Collect one dispatch wave with the full recovery policy.

        ``broken`` is the exception class that means "the worker died"
        (vs. "the chunk failed"): dead chunks go back on ``todo``
        without burning retry budget — the respawn/degradation budget
        bounds them instead.  Returns whether the pool must be
        recycled.
        """
        host = self._pool_host
        dead = False
        pending = set(futs)
        deadline = None
        if host._round_timeout:
            deadline = time.monotonic() + host._round_timeout
        while pending:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            done, pending = wait(pending, timeout=timeout)
            if not done and pending:
                self._expire_wave(pending, futs, chunks, todo, attempts,
                                  n, rid)
                break
            for f in done:
                ci = futs[f]
                try:
                    res = f.result()
                except broken:
                    dead = True
                    todo.append(ci)
                except Exception as exc:
                    self._retry_or_raise(ci, chunks[ci], attempts[ci],
                                         n, rid, exc, pending)
                    todo.append(ci)
                else:
                    finish(ci, res)
        return dead

    def _expire_wave(self, pending, futs, chunks, todo, attempts,
                     n: int, rid: int) -> None:
        """The round deadline passed: cancel every straggler and requeue
        it (running chunks cannot be interrupted, but they are pure —
        their late results are simply discarded)."""
        for f in pending:
            f.cancel()
        for f in pending:
            ci = futs[f]
            self._fault_count("fault.timeouts", rid)
            if self.tracer.enabled:
                self.tracer.instant("fault.timeout", cat="fault",
                                    round=rid, chunk=ci)
            if attempts[ci] > self._pool_host._retries:
                lo, hi = chunks[ci]
                raise ChunkError(
                    f"map_chunks round {rid} chunk {ci} [{lo}, {hi}) of "
                    f"{n} items timed out after {attempts[ci]} attempt(s)")
            todo.append(ci)

    def _retry_or_raise(self, ci: int, span, attempt: int, n: int,
                        rid: int, exc, pending=()) -> None:
        """Charge one failed attempt: back off and return (the caller
        requeues the chunk), or abort the wave as a ChunkError."""
        lo, hi = span
        if attempt > self._pool_host._retries:
            self._abort_wave(pending)
            raise ChunkError(
                f"map_chunks round {rid} chunk {ci} [{lo}, {hi}) of {n} "
                f"items failed after {attempt} attempt(s): {exc}") from exc
        self._fault_count("fault.retries", rid)
        backoff = self._pool_host._backoff
        if backoff > 0:
            time.sleep(min(MAX_BACKOFF, backoff * (2 ** (attempt - 1))))

    @staticmethod
    def _abort_wave(pending) -> None:
        """Cancel what has not started, drain what is running — after
        this returns, no chunk of the aborted wave is still executing,
        so nothing can race a later round."""
        for f in pending:
            f.cancel()
        for f in pending:
            if not f.cancelled():
                try:
                    f.exception()
                except BaseException:
                    pass

    def _pool_failure(self, rid: int) -> None:
        """A worker died: recycle the pool, then respawn or degrade.

        The broken pool is torn down either way.  While the respawn
        budget lasts, the next wave lazily re-creates a pool on the
        same backend and re-dispatches only the lost chunks; after
        that, the run degrades one backend level (process -> threaded
        -> serial) and the budget resets for the new backend.  The
        arena's *mappings* survive a degradation — existing shared
        views stay valid on the degraded backend — but its segment
        names are unlinked the moment the run leaves the process
        backend: no worker will ever attach again, and an unlinked
        segment stops claiming ``/dev/shm`` space the moment the last
        view goes away instead of leaking until garbage collection.
        """
        host = self._pool_host
        backend = host._backend
        if backend == "serial":  # nothing below serial; inline retries
            return
        if host._procpool is not None:
            host._procpool.shutdown(wait=False)
            host._procpool = None
        if host._pool is not None:
            host._pool.shutdown(wait=False, cancel_futures=True)
            host._pool = None
        if host._respawns < host._max_respawns:
            host._respawns += 1
            self._fault_count("fault.respawns", rid)
            self._fault_event({"kind": "respawn", "backend": backend,
                               "round": rid})
            return
        lower = BACKENDS[BACKENDS.index(backend) - 1]
        host._backend = lower
        host._respawns = 0
        if backend == "process" and host._arena is not None:
            host._arena.unlink_all()
        self._fault_count("fault.degradations", rid)
        self._fault_event({"kind": "degrade", "from": backend,
                           "to": lower, "round": rid})

    # -- fault bookkeeping ---------------------------------------------------

    def _draw_fault(self, rid: int, ci: int, attempt: int):
        plan = self._pool_host._faultplan
        if plan is None:
            return None
        spec = plan.draw(rid, ci, attempt)
        if spec is not None:
            self._fault_count(f"fault.injected.{spec.kind}", rid)
            if self.tracer.enabled:
                self.tracer.instant(f"fault.{spec.kind}", cat="fault",
                                    round=rid, chunk=ci, attempt=attempt)
        return spec

    def _fault_count(self, name: str, rid: int) -> None:
        host = self._pool_host
        host._fault_stats[name] = host._fault_stats.get(name, 0) + 1
        if self.tracer.enabled:
            self.tracer.count(name, 1, round=rid)

    def _fault_event(self, event: dict) -> None:
        host = self._pool_host
        host._fault_events.append(event)
        if self.tracer.enabled:
            self.tracer.instant(f"fault.{event['kind']}", cat="fault", **{
                k: v for k, v in event.items() if k != "kind"})

    def fault_record(self) -> dict | None:
        """Digest of the run's fault activity, or ``None`` for a quiet
        run with no plan (the common case — keeps result rows clean).

        ``counters`` are the run-wide ``fault.*`` totals (injections,
        retries, timeouts, respawns, degradations); ``events`` the
        ordered respawn/degradation log; ``plan`` the injection plan's
        own digest (clause count, seed, events fired per kind) when one
        was attached.
        """
        host = self._pool_host
        if host._faultplan is None and not host._fault_stats \
                and not host._fault_events:
            return None
        return {"counters": dict(host._fault_stats),
                "events": list(host._fault_events),
                "plan": host._faultplan.describe()
                if host._faultplan is not None else None}

    def dispatch_record(self) -> dict | None:
        """Digest of the run's adaptive-dispatch activity, or ``None``
        when adaptive dispatch is off — or never had a decision to make
        (serial runs, single-chunk rounds) — keeping result rows clean.

        ``decisions`` counts rounds kept inline vs. dispatched to the
        pool; ``unit_s``/``dispatch_s`` expose the learned model
        (seconds per work unit per kernel, per-chunk overhead per
        backend) and ``seeded`` how each backend's overhead estimate
        was born (``calibrated`` through the real pool, or ``static``).
        """
        host = self._pool_host
        est = host._estimator
        if est is None or not (est.decisions["inline"]
                               or est.decisions["parallel"]):
            return None
        rec = est.record()
        rec["mode"] = self.adaptive
        return rec

    def _record_round(self, rid: int, phase, t0: float, t1: float,
                      n: int, walls: list) -> None:
        max_w = max(walls, default=0.0)
        mean_w = sum(walls) / len(walls) if walls else 0.0
        self.tracer.record(f"{phase or 'map_chunks'}#round{rid}", "round",
                           t0, t1, round=rid, phase=phase, items=n,
                           chunks=len(walls), max_chunk_s=max_w,
                           mean_chunk_s=mean_w,
                           imbalance=(max_w / mean_w) if mean_w > 0 else 1.0)

    # -- accounting ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute cost *and wall-clock time* inside the block to ``name``.

        ``wall_by_phase`` records *exclusive* (self) time: a nested
        phase's wall is charged to the inner name only, so the dict's
        values sum to at most the real elapsed wall.
        """
        tracer = self.tracer
        tr0 = tracer.now() if tracer.enabled else 0.0
        t0 = time.perf_counter()
        frame = [name, 0.0]
        self._phase_stack.append(frame)
        with self.cost.phase(name):
            try:
                yield self
            finally:
                elapsed = time.perf_counter() - t0
                self._phase_stack.pop()
                self_time = max(0.0, elapsed - frame[1])
                self.wall_by_phase[name] = \
                    self.wall_by_phase.get(name, 0.0) + self_time
                if self._phase_stack:
                    self._phase_stack[-1][1] += elapsed
                if tracer.enabled:
                    tracer.record(name, "phase", tr0, tracer.now(),
                                  self_s=self_time)

    def trace_summary(self) -> dict | None:
        """The tracer's digest, or ``None`` when tracing is off."""
        return self.tracer.summary() if self.tracer.enabled else None

    def describe(self) -> dict:
        """Flat record of the execution configuration (for result rows),
        including the exclusive per-phase wall split recorded so far."""
        return {"backend": self.backend, "workers": self.workers,
                "adaptive": self.adaptive,
                "kernel_tier": self.kernel_tier,
                "wall_by_phase": dict(self.wall_by_phase)}


def resolve_context(ctx: ExecutionContext | None,
                    backend: str | None = None,
                    workers: int | None = None,
                    cost: CostModel | None = None,
                    mem: MemoryModel | None = None,
                    crew: bool = False,
                    trace=None,
                    weighted_chunks: bool | None = None,
                    faults=None,
                    adaptive=None,
                    shards: int | None = None,
                    kernel_tier: str | None = None,
                    ) -> tuple[ExecutionContext, bool]:
    """Return ``(context, owns)`` for an engine entry point.

    When the caller supplied a context it is used as-is (``owns`` False:
    the caller manages the pool); otherwise a fresh one is built from
    ``backend``/``workers``/``trace``/``faults``/accounting arguments
    and ``owns`` is True — the engine must ``close()`` it (or use it as
    a context manager).
    """
    if ctx is not None:
        return ctx, False
    return ExecutionContext(backend=backend, workers=workers,
                            cost=cost, mem=mem, crew=crew,
                            trace=trace,
                            weighted_chunks=weighted_chunks,
                            faults=faults, adaptive=adaptive,
                            shards=shards, kernel_tier=kernel_tier), True
