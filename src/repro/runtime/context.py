"""ExecutionContext: the unified per-run execution runtime.

Every algorithm in this library is a sequence of *parallel rounds* over
NumPy arrays.  An :class:`ExecutionContext` bundles everything one run
needs to execute those rounds and account for them:

- a ``backend`` switch (``'serial'``, ``'threaded'`` or ``'process'``)
  with a worker count (argument, else ``$REPRO_WORKERS``, else the CPU
  count);
- the chunked execution machinery (:mod:`repro.machine.parallel`, the
  shared-memory arena and worker pool of :mod:`repro.runtime.shm`)
  behind one :meth:`map_chunks` seam, with optional *work-balanced*
  chunking: engines pass per-item weights (frontier degrees, batch
  degrees) and chunk boundaries come from a prefix-sum split of total
  weight instead of an even split by count;
- the :class:`~repro.machine.costmodel.CostModel` and
  :class:`~repro.machine.memmodel.MemoryModel` accounting books;
- per-phase wall-clock timers (:meth:`phase`), recording *exclusive*
  (self) time so nested phases never double-count;
- a run tracer (:mod:`repro.obs`): span events per phase, per-chunk
  events with worker ids and an imbalance summary per chunked round,
  and the per-round metric series engines emit.  The default is the
  no-op null tracer — every traced code path branches on
  ``tracer.enabled``, so an untraced run executes exactly the
  pre-tracing instructions.

The contract every engine written against this context obeys: the
parallel backends chunk each round over independent spans and combine
the partial results in deterministic chunk order, so colors, waves, and
the recorded work/depth/memory totals are **bit-identical** to the
serial backend — for any worker count, and with weighted chunking on
or off (weights move chunk *boundaries*, never the combine order).  On
the serial backend :meth:`map_chunks` degrades to a single chunk —
zero chunking overhead, exactly the monolithic vectorized round.
Tracing is observation only: enabling it never changes results or
accounting.

Backends:

- ``'serial'`` — one inline chunk per round.
- ``'threaded'`` — a shared :class:`ThreadPoolExecutor`; NumPy kernels
  release the GIL, so chunks overlap inside the C kernels.
- ``'process'`` — a persistent forkserver worker pool plus a
  :class:`~repro.runtime.shm.SharedArena`: the graph and per-run state
  arrays live in shared memory with zero-copy views on both sides, and
  engines describe each round as a picklable
  :class:`~repro.runtime.kernels.Kernel` descriptor (module-level
  kernel + array names + scalars) instead of a closure.  True
  parallelism — no GIL — at the cost of pickling each chunk's result.

Serial and threaded accept plain ``fn(lo, hi)`` closures; the process
backend requires the descriptor form (every engine in this library
passes descriptors, which the other backends simply call inline).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, TypeVar

from ..machine.costmodel import CostModel
from ..machine.memmodel import MemoryModel
from ..machine.parallel import (
    default_workers,
    split_chunks,
    split_chunks_weighted,
)
from ..obs import resolve_tracer
from .kernels import Kernel
from .shm import SharedArena, create_pool, run_kernel_task

T = TypeVar("T")

BACKENDS = ("serial", "threaded", "process")

#: Chunks per worker: oversubscription smooths load imbalance between
#: spans (frontier vertices have wildly varying degrees).
CHUNKS_PER_WORKER = 4


class ChunkError(RuntimeError):
    """A chunk of a :meth:`ExecutionContext.map_chunks` round raised.

    Carries the failing chunk's ``[lo, hi)`` range in the message and
    chains the original exception; remaining futures of the round are
    cancelled (pending) or drained (running) before this is raised, so
    no worker outlives the call.
    """


def default_backend() -> str:
    """Backend: $REPRO_BACKEND if set (and valid), else 'serial'."""
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not env:
        return "serial"
    if env not in BACKENDS:
        raise ValueError(f"$REPRO_BACKEND must be one of {BACKENDS}, "
                         f"got {env!r}")
    return env


def default_weighted_chunks() -> bool:
    """Weighted chunking: $REPRO_WEIGHTED_CHUNKS if set, else on.

    Weighted chunking never changes results (only chunk boundaries),
    so it defaults on; the switch exists for A/B benchmarking and for
    bisecting imbalance regressions.
    """
    env = os.environ.get("REPRO_WEIGHTED_CHUNKS", "").strip().lower()
    if not env:
        return True
    if env in ("0", "off", "false", "no"):
        return False
    if env in ("1", "on", "true", "yes"):
        return True
    raise ValueError(f"$REPRO_WEIGHTED_CHUNKS must be a boolean flag "
                     f"(1/0/on/off), got {env!r}")


class ExecutionContext:
    """One object carrying backend, pool, accounting, timers, and tracer.

    Parameters
    ----------
    backend:
        ``'serial'``, ``'threaded'`` or ``'process'``; ``None``
        resolves via :func:`default_backend` (``$REPRO_BACKEND``, else
        serial).
    workers:
        Worker count for the parallel backends; ``None`` resolves via
        ``$REPRO_WORKERS``, else the CPU count.  Forced to 1 on the
        serial backend.
    weighted_chunks:
        Honor per-round ``weights`` in :meth:`map_chunks` (work-
        proportional chunk boundaries); ``None`` resolves via
        ``$REPRO_WEIGHTED_CHUNKS``, else on.  Results are identical
        either way — only the chunk boundaries (and the load balance)
        move.
    cost, mem:
        Accounting books to record into; fresh models when ``None``.
    crew:
        Passed to a freshly created :class:`CostModel` (CREW charging
        for scatter primitives).
    trace:
        A :class:`~repro.obs.Tracer`, a sink path, ``True`` (in-memory),
        ``False`` (off), or ``None`` to defer to ``$REPRO_TRACE`` — see
        :func:`repro.obs.resolve_tracer`.  Defaults to the zero-overhead
        null tracer.

    The context is a context manager; the thread pool is created lazily
    on first threaded :meth:`map_chunks` and shut down by
    :meth:`close` / ``__exit__`` (which also flushes a path-bound
    tracer).  :meth:`child` derives a context with fresh accounting
    books that *shares* the pool and the tracer (used to account an
    ordering phase separately from the coloring phase of one run).
    """

    def __init__(self, backend: str | None = None, workers: int | None = None,
                 cost: CostModel | None = None, mem: MemoryModel | None = None,
                 crew: bool = False, trace=None,
                 weighted_chunks: bool | None = None,
                 _pool_host: "ExecutionContext | None" = None):
        self.backend = backend if backend is not None else default_backend()
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.backend == "serial":
            self.workers = 1
        else:
            self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.weighted_chunks = weighted_chunks if weighted_chunks is not None \
            else default_weighted_chunks()
        self.cost = cost if cost is not None else CostModel(crew=crew)
        self.mem = mem if mem is not None else MemoryModel()
        self.wall_by_phase: dict[str, float] = {}
        self.tracer = resolve_tracer(trace)
        if self.tracer.enabled:
            self.tracer.meta.setdefault("backend", self.backend)
            self.tracer.meta.setdefault("workers", self.workers)
        self._pool_host = _pool_host if _pool_host is not None else self
        self._pool: ThreadPoolExecutor | None = None
        self._procpool = None
        self._arena: SharedArena | None = None
        # Open-phase stack: [name, child_wall_seconds] frames, for
        # exclusive timing and for labeling traced rounds.
        self._phase_stack: list[list] = []
        self._round_seq = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down pools and the shared arena, and flush a path-bound
        tracer (only if this context is the pool host)."""
        if self._pool_host is self:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._procpool is not None:
                self._procpool.shutdown(wait=True)
                self._procpool = None
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            self.tracer.flush()

    def child(self, cost: CostModel | None = None,
              mem: MemoryModel | None = None,
              crew: bool = False) -> "ExecutionContext":
        """Same backend/workers/pool/arena/tracer, fresh books and timers."""
        return ExecutionContext(backend=self.backend, workers=self.workers,
                                cost=cost, mem=mem, crew=crew,
                                trace=self.tracer,
                                weighted_chunks=self.weighted_chunks,
                                _pool_host=self._pool_host)

    def _acquire_pool(self) -> ThreadPoolExecutor | None:
        host = self._pool_host
        if host._pool is None and self.backend == "threaded" \
                and self.workers > 1:
            host._pool = ThreadPoolExecutor(max_workers=self.workers)
        return host._pool

    def _acquire_procpool(self):
        host = self._pool_host
        if host._procpool is None:
            host._procpool = create_pool(self.workers)
        return host._procpool

    def _acquire_arena(self) -> SharedArena:
        host = self._pool_host
        if host._arena is None:
            host._arena = SharedArena()
        return host._arena

    # -- shared state (process backend) --------------------------------------

    def share(self, ns: str, name: str, arr):
        """Adopt a per-run state array into the shared arena.

        On the process backend the array is copied once into shared
        memory and the *shared view* comes back: the engine keeps
        reading and writing through it, workers see every coordinator
        write with no further transfer, and :meth:`map_chunks` ships
        only the array's name.  On every other backend (or with one
        worker) the array is returned unchanged — the call is free.

        Arrays an engine rebuilds every round (frontiers, batches) need
        no ``share``: :meth:`map_chunks` uploads them per round.
        """
        if self.backend != "process" or self.workers <= 1:
            return arr
        return self._acquire_arena().put(f"{ns}:{name}", arr)

    def localize(self, arr):
        """A private copy when ``arr`` is an arena view, else ``arr``.

        Call on any shared array that outlives the run (result colors):
        the arena's segments are unlinked by :meth:`close`.
        """
        host = self._pool_host
        if host._arena is not None and host._arena.owns(arr):
            return arr.copy()
        return arr

    # -- execution -----------------------------------------------------------

    def map_chunks(self, fn: Callable[[int, int], T], n: int,
                   weights=None) -> list[T]:
        """Run ``fn(lo, hi)`` over a chunking of range(n), in chunk order.

        Serial backend (or 1 worker): one chunk, executed inline — the
        call is exactly ``[fn(0, n)]``.  Parallel backends: balanced
        chunks on the shared pool; results are returned in chunk order,
        so order-dependent combines are deterministic.

        ``weights`` (per-item non-negative work estimates, e.g. the
        frontier's vertex degrees) switches the chunk boundaries to a
        prefix-sum split of total weight — work-balanced chunks for
        skewed inputs.  Ignored on the serial path, when
        ``weighted_chunks`` is off, or when all weights are zero;
        results are bit-identical in every case because only the
        boundaries move, never the combine order.

        On the process backend ``fn`` must be a
        :class:`~repro.runtime.kernels.Kernel` descriptor (serial and
        threaded accept descriptors too and just call them).

        A chunk that raises aborts the round as a :class:`ChunkError`
        naming the chunk's range; pending chunks are cancelled and
        running ones drained before the error propagates.
        """
        if self.backend == "serial" or self.workers <= 1:
            chunks = split_chunks(n, 1)
            pool = None
        else:
            target = self.workers * CHUNKS_PER_WORKER
            if weights is not None and self.weighted_chunks:
                chunks = split_chunks_weighted(n, target, weights)
            else:
                chunks = split_chunks(n, target)
            pool = None
            if len(chunks) > 1:
                pool = self._acquire_procpool() \
                    if self.backend == "process" else self._acquire_pool()
        if self.backend == "process" and pool is not None:
            if not isinstance(fn, Kernel):
                raise TypeError(
                    "the process backend runs picklable kernel "
                    "descriptors, not closures: pass a "
                    "repro.runtime.kernels.Kernel to map_chunks "
                    "(serial/threaded accept any callable)")
            if self.tracer.enabled:
                return self._run_procpool_traced(pool, fn, chunks, n)
            return self._run_procpool(pool, fn, chunks, n, timed=False)
        if self.tracer.enabled:
            return self._map_chunks_traced(fn, n, chunks, pool)
        if pool is None:
            return self._run_inline(fn, chunks, n)
        return self._run_pooled(pool, fn, chunks, n)

    def _run_inline(self, fn, chunks, n: int) -> list:
        out = []
        for lo, hi in chunks:
            try:
                out.append(fn(lo, hi))
            except Exception as exc:
                raise ChunkError(f"map_chunks chunk [{lo}, {hi}) of "
                                 f"{n} items failed: {exc}") from exc
        return out

    def _collect(self, futures, chunks, n: int) -> list:
        """Gather futures in chunk order with ChunkError semantics."""
        out = []
        try:
            for (lo, hi), f in zip(chunks, futures):
                try:
                    out.append(f.result())
                except Exception as exc:
                    raise ChunkError(f"map_chunks chunk [{lo}, {hi}) of "
                                     f"{n} items failed: {exc}") from exc
        except ChunkError:
            for f in futures:
                f.cancel()
            for f in futures:  # drain running chunks before re-raising
                if not f.cancelled():
                    try:
                        f.exception()
                    except BaseException:
                        pass
            raise
        return out

    def _run_pooled(self, pool, fn, chunks, n: int) -> list:
        futures = [pool.submit(fn, lo, hi) for lo, hi in chunks]
        return self._collect(futures, chunks, n)

    def _run_procpool(self, pool, kern: Kernel, chunks, n: int,
                      timed: bool) -> list:
        """Ship a kernel descriptor's chunks to the worker pool.

        Arrays are adopted into the shared arena first: zero-copy for
        arrays the engine holds as arena views (see :meth:`share`), one
        memcpy for per-round arrays.  Workers receive only the kernel
        name, the array specs, the scalars, and the chunk bounds.
        """
        arena = self._acquire_arena()
        specs = {key: arena.adopt(f"{kern.ns}:{key}", arr)
                 for key, arr in kern.arrays.items()}
        futures = [pool.submit(run_kernel_task, kern.name, specs,
                               kern.scalars, lo, hi, timed)
                   for lo, hi in chunks]
        return self._collect(futures, chunks, n)

    def _map_chunks_traced(self, fn, n: int, chunks, pool) -> list:
        """Traced twin of the hot paths: per-chunk span events (worker
        id, chunk size) plus one round event with the max/mean chunk
        wall imbalance summary.  Results are identical to the untraced
        paths — tracing only observes."""
        import threading

        tracer = self.tracer
        self._round_seq += 1
        rid = self._round_seq
        phase = self._phase_stack[-1][0] if self._phase_stack else None
        records: list[tuple] = []  # GIL-atomic appends from workers

        def timed(lo: int, hi: int):
            c0 = tracer.now()
            res = fn(lo, hi)
            records.append((lo, hi, c0, tracer.now(),
                            threading.get_ident()))
            return res

        t0 = tracer.now()
        if pool is None:
            out = self._run_inline(timed, chunks, n)
        else:
            out = self._run_pooled(pool, timed, chunks, n)
        t1 = tracer.now()

        walls = []
        for lo, hi, c0, c1, ident in sorted(records):
            tracer.record(f"chunk[{lo}:{hi})", "chunk", c0, c1, tid=ident,
                          round=rid, size=hi - lo, phase=phase)
            walls.append(c1 - c0)
        self._record_round(rid, phase, t0, t1, n, walls)
        return out

    def _run_procpool_traced(self, pool, kern: Kernel, chunks,
                             n: int) -> list:
        """Traced twin of the process path: chunk walls are measured
        *inside* the workers (real pids as worker ids) and mapped onto
        the tracer's timeline; results are identical to the untraced
        path."""
        tracer = self.tracer
        self._round_seq += 1
        rid = self._round_seq
        phase = self._phase_stack[-1][0] if self._phase_stack else None

        t0 = tracer.now()
        packed = self._run_procpool(pool, kern, chunks, n, timed=True)
        t1 = tracer.now()
        # Workers time with perf_counter; anchor their absolute stamps
        # to this tracer's epoch (same monotonic clock on one host).
        epoch = time.perf_counter() - tracer.now()

        out, walls = [], []
        for (lo, hi), (res, c0, c1, pid) in zip(chunks, packed):
            out.append(res)
            tracer.record(f"chunk[{lo}:{hi})", "chunk",
                          c0 - epoch, c1 - epoch, tid=pid,
                          round=rid, size=hi - lo, phase=phase)
            walls.append(c1 - c0)
        self._record_round(rid, phase, t0, t1, n, walls)
        return out

    def _record_round(self, rid: int, phase, t0: float, t1: float,
                      n: int, walls: list) -> None:
        max_w = max(walls, default=0.0)
        mean_w = sum(walls) / len(walls) if walls else 0.0
        self.tracer.record(f"{phase or 'map_chunks'}#round{rid}", "round",
                           t0, t1, round=rid, phase=phase, items=n,
                           chunks=len(walls), max_chunk_s=max_w,
                           mean_chunk_s=mean_w,
                           imbalance=(max_w / mean_w) if mean_w > 0 else 1.0)

    # -- accounting ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute cost *and wall-clock time* inside the block to ``name``.

        ``wall_by_phase`` records *exclusive* (self) time: a nested
        phase's wall is charged to the inner name only, so the dict's
        values sum to at most the real elapsed wall.
        """
        tracer = self.tracer
        tr0 = tracer.now() if tracer.enabled else 0.0
        t0 = time.perf_counter()
        frame = [name, 0.0]
        self._phase_stack.append(frame)
        with self.cost.phase(name):
            try:
                yield self
            finally:
                elapsed = time.perf_counter() - t0
                self._phase_stack.pop()
                self_time = max(0.0, elapsed - frame[1])
                self.wall_by_phase[name] = \
                    self.wall_by_phase.get(name, 0.0) + self_time
                if self._phase_stack:
                    self._phase_stack[-1][1] += elapsed
                if tracer.enabled:
                    tracer.record(name, "phase", tr0, tracer.now(),
                                  self_s=self_time)

    def trace_summary(self) -> dict | None:
        """The tracer's digest, or ``None`` when tracing is off."""
        return self.tracer.summary() if self.tracer.enabled else None

    def describe(self) -> dict:
        """Flat record of the execution configuration (for result rows),
        including the exclusive per-phase wall split recorded so far."""
        return {"backend": self.backend, "workers": self.workers,
                "wall_by_phase": dict(self.wall_by_phase)}


def resolve_context(ctx: ExecutionContext | None,
                    backend: str | None = None,
                    workers: int | None = None,
                    cost: CostModel | None = None,
                    mem: MemoryModel | None = None,
                    crew: bool = False,
                    trace=None,
                    weighted_chunks: bool | None = None) -> \
        tuple[ExecutionContext, bool]:
    """Return ``(context, owns)`` for an engine entry point.

    When the caller supplied a context it is used as-is (``owns`` False:
    the caller manages the pool); otherwise a fresh one is built from
    ``backend``/``workers``/``trace``/accounting arguments and ``owns``
    is True — the engine must ``close()`` it (or use it as a context
    manager).
    """
    if ctx is not None:
        return ctx, False
    return ExecutionContext(backend=backend, workers=workers,
                            cost=cost, mem=mem, crew=crew,
                            trace=trace,
                            weighted_chunks=weighted_chunks), True
