"""ExecutionContext: the unified per-run execution runtime.

Every algorithm in this library is a sequence of *parallel rounds* over
NumPy arrays.  An :class:`ExecutionContext` bundles everything one run
needs to execute those rounds and account for them:

- a ``backend`` switch (``'serial'`` or ``'threaded'``) with a worker
  count (argument, else ``$REPRO_WORKERS``, else the CPU count);
- the chunked thread-pool machinery (:mod:`repro.machine.parallel`)
  behind one :meth:`map_chunks` seam;
- the :class:`~repro.machine.costmodel.CostModel` and
  :class:`~repro.machine.memmodel.MemoryModel` accounting books;
- per-phase wall-clock timers (:meth:`phase`), recording *exclusive*
  (self) time so nested phases never double-count;
- a run tracer (:mod:`repro.obs`): span events per phase, per-chunk
  events with worker ids and an imbalance summary per chunked round,
  and the per-round metric series engines emit.  The default is the
  no-op null tracer — every traced code path branches on
  ``tracer.enabled``, so an untraced run executes exactly the
  pre-tracing instructions.

The contract every engine written against this context obeys: the
*threaded* backend chunks each round over independent spans and combines
the partial results in deterministic chunk order, so colors, waves, and
the recorded work/depth/memory totals are **bit-identical** to the
serial backend.  On the serial backend :meth:`map_chunks` degrades to a
single chunk — zero chunking overhead, exactly the monolithic
vectorized round.  Tracing is observation only: enabling it never
changes results or accounting.

Future backends (process pools, numba kernels) plug in here: implement
the :meth:`map_chunks` seam for the new backend and every engine gains
it without another per-algorithm fork.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, TypeVar

from ..machine.costmodel import CostModel
from ..machine.memmodel import MemoryModel
from ..machine.parallel import default_workers, split_chunks
from ..obs import resolve_tracer

T = TypeVar("T")

BACKENDS = ("serial", "threaded")

#: Chunks per worker: oversubscription smooths load imbalance between
#: spans (frontier vertices have wildly varying degrees).
CHUNKS_PER_WORKER = 4


class ChunkError(RuntimeError):
    """A chunk of a :meth:`ExecutionContext.map_chunks` round raised.

    Carries the failing chunk's ``[lo, hi)`` range in the message and
    chains the original exception; remaining futures of the round are
    cancelled (pending) or drained (running) before this is raised, so
    no worker outlives the call.
    """


def default_backend() -> str:
    """Backend: $REPRO_BACKEND if set (and valid), else 'serial'."""
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not env:
        return "serial"
    if env not in BACKENDS:
        raise ValueError(f"$REPRO_BACKEND must be one of {BACKENDS}, "
                         f"got {env!r}")
    return env


class ExecutionContext:
    """One object carrying backend, pool, accounting, timers, and tracer.

    Parameters
    ----------
    backend:
        ``'serial'`` or ``'threaded'``; ``None`` resolves via
        :func:`default_backend` (``$REPRO_BACKEND``, else serial).
    workers:
        Thread count for the threaded backend; ``None`` resolves via
        ``$REPRO_WORKERS``, else the CPU count.  Forced to 1 on the
        serial backend.
    cost, mem:
        Accounting books to record into; fresh models when ``None``.
    crew:
        Passed to a freshly created :class:`CostModel` (CREW charging
        for scatter primitives).
    trace:
        A :class:`~repro.obs.Tracer`, a sink path, ``True`` (in-memory),
        ``False`` (off), or ``None`` to defer to ``$REPRO_TRACE`` — see
        :func:`repro.obs.resolve_tracer`.  Defaults to the zero-overhead
        null tracer.

    The context is a context manager; the thread pool is created lazily
    on first threaded :meth:`map_chunks` and shut down by
    :meth:`close` / ``__exit__`` (which also flushes a path-bound
    tracer).  :meth:`child` derives a context with fresh accounting
    books that *shares* the pool and the tracer (used to account an
    ordering phase separately from the coloring phase of one run).
    """

    def __init__(self, backend: str | None = None, workers: int | None = None,
                 cost: CostModel | None = None, mem: MemoryModel | None = None,
                 crew: bool = False, trace=None,
                 _pool_host: "ExecutionContext | None" = None):
        self.backend = backend if backend is not None else default_backend()
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.backend == "serial":
            self.workers = 1
        else:
            self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.cost = cost if cost is not None else CostModel(crew=crew)
        self.mem = mem if mem is not None else MemoryModel()
        self.wall_by_phase: dict[str, float] = {}
        self.tracer = resolve_tracer(trace)
        if self.tracer.enabled:
            self.tracer.meta.setdefault("backend", self.backend)
            self.tracer.meta.setdefault("workers", self.workers)
        self._pool_host = _pool_host if _pool_host is not None else self
        self._pool: ThreadPoolExecutor | None = None
        # Open-phase stack: [name, child_wall_seconds] frames, for
        # exclusive timing and for labeling traced rounds.
        self._phase_stack: list[list] = []
        self._round_seq = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool and flush a path-bound tracer (only if
        this context is the pool host)."""
        if self._pool_host is self:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self.tracer.flush()

    def child(self, cost: CostModel | None = None,
              mem: MemoryModel | None = None,
              crew: bool = False) -> "ExecutionContext":
        """Same backend/workers/pool/tracer, fresh books and timers."""
        return ExecutionContext(backend=self.backend, workers=self.workers,
                                cost=cost, mem=mem, crew=crew,
                                trace=self.tracer,
                                _pool_host=self._pool_host)

    def _acquire_pool(self) -> ThreadPoolExecutor | None:
        host = self._pool_host
        if host._pool is None and self.backend == "threaded" \
                and self.workers > 1:
            host._pool = ThreadPoolExecutor(max_workers=self.workers)
        return host._pool

    # -- execution -----------------------------------------------------------

    def map_chunks(self, fn: Callable[[int, int], T], n: int) -> list[T]:
        """Run ``fn(lo, hi)`` over a chunking of range(n), in chunk order.

        Serial backend (or 1 worker): one chunk, executed inline — the
        call is exactly ``[fn(0, n)]``.  Threaded backend: balanced
        chunks on the shared pool; results are returned in chunk order,
        so order-dependent combines are deterministic.

        A chunk that raises aborts the round as a :class:`ChunkError`
        naming the chunk's range; pending chunks are cancelled and
        running ones drained before the error propagates.
        """
        if self.backend == "serial" or self.workers <= 1:
            chunks = split_chunks(n, 1)
            pool = None
        else:
            chunks = split_chunks(n, self.workers * CHUNKS_PER_WORKER)
            pool = self._acquire_pool() if len(chunks) > 1 else None
        if self.tracer.enabled:
            return self._map_chunks_traced(fn, n, chunks, pool)
        if pool is None:
            return self._run_inline(fn, chunks, n)
        return self._run_pooled(pool, fn, chunks, n)

    def _run_inline(self, fn, chunks, n: int) -> list:
        out = []
        for lo, hi in chunks:
            try:
                out.append(fn(lo, hi))
            except Exception as exc:
                raise ChunkError(f"map_chunks chunk [{lo}, {hi}) of "
                                 f"{n} items failed: {exc}") from exc
        return out

    def _run_pooled(self, pool, fn, chunks, n: int) -> list:
        futures = [pool.submit(fn, lo, hi) for lo, hi in chunks]
        out = []
        try:
            for (lo, hi), f in zip(chunks, futures):
                try:
                    out.append(f.result())
                except Exception as exc:
                    raise ChunkError(f"map_chunks chunk [{lo}, {hi}) of "
                                     f"{n} items failed: {exc}") from exc
        except ChunkError:
            for f in futures:
                f.cancel()
            for f in futures:  # drain running chunks before re-raising
                if not f.cancelled():
                    try:
                        f.exception()
                    except BaseException:
                        pass
            raise
        return out

    def _map_chunks_traced(self, fn, n: int, chunks, pool) -> list:
        """Traced twin of the hot paths: per-chunk span events (worker
        id, chunk size) plus one round event with the max/mean chunk
        wall imbalance summary.  Results are identical to the untraced
        paths — tracing only observes."""
        import threading

        tracer = self.tracer
        self._round_seq += 1
        rid = self._round_seq
        phase = self._phase_stack[-1][0] if self._phase_stack else None
        records: list[tuple] = []  # GIL-atomic appends from workers

        def timed(lo: int, hi: int):
            c0 = tracer.now()
            res = fn(lo, hi)
            records.append((lo, hi, c0, tracer.now(),
                            threading.get_ident()))
            return res

        t0 = tracer.now()
        if pool is None:
            out = self._run_inline(timed, chunks, n)
        else:
            out = self._run_pooled(pool, timed, chunks, n)
        t1 = tracer.now()

        walls = []
        for lo, hi, c0, c1, ident in sorted(records):
            tracer.record(f"chunk[{lo}:{hi})", "chunk", c0, c1, tid=ident,
                          round=rid, size=hi - lo, phase=phase)
            walls.append(c1 - c0)
        max_w = max(walls, default=0.0)
        mean_w = sum(walls) / len(walls) if walls else 0.0
        tracer.record(f"{phase or 'map_chunks'}#round{rid}", "round",
                      t0, t1, round=rid, phase=phase, items=n,
                      chunks=len(walls), max_chunk_s=max_w,
                      mean_chunk_s=mean_w,
                      imbalance=(max_w / mean_w) if mean_w > 0 else 1.0)
        return out

    # -- accounting ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute cost *and wall-clock time* inside the block to ``name``.

        ``wall_by_phase`` records *exclusive* (self) time: a nested
        phase's wall is charged to the inner name only, so the dict's
        values sum to at most the real elapsed wall.
        """
        tracer = self.tracer
        tr0 = tracer.now() if tracer.enabled else 0.0
        t0 = time.perf_counter()
        frame = [name, 0.0]
        self._phase_stack.append(frame)
        with self.cost.phase(name):
            try:
                yield self
            finally:
                elapsed = time.perf_counter() - t0
                self._phase_stack.pop()
                self_time = max(0.0, elapsed - frame[1])
                self.wall_by_phase[name] = \
                    self.wall_by_phase.get(name, 0.0) + self_time
                if self._phase_stack:
                    self._phase_stack[-1][1] += elapsed
                if tracer.enabled:
                    tracer.record(name, "phase", tr0, tracer.now(),
                                  self_s=self_time)

    def trace_summary(self) -> dict | None:
        """The tracer's digest, or ``None`` when tracing is off."""
        return self.tracer.summary() if self.tracer.enabled else None

    def describe(self) -> dict:
        """Flat record of the execution configuration (for result rows),
        including the exclusive per-phase wall split recorded so far."""
        return {"backend": self.backend, "workers": self.workers,
                "wall_by_phase": dict(self.wall_by_phase)}


def resolve_context(ctx: ExecutionContext | None,
                    backend: str | None = None,
                    workers: int | None = None,
                    cost: CostModel | None = None,
                    mem: MemoryModel | None = None,
                    crew: bool = False,
                    trace=None) -> tuple[ExecutionContext, bool]:
    """Return ``(context, owns)`` for an engine entry point.

    When the caller supplied a context it is used as-is (``owns`` False:
    the caller manages the pool); otherwise a fresh one is built from
    ``backend``/``workers``/``trace``/accounting arguments and ``owns``
    is True — the engine must ``close()`` it (or use it as a context
    manager).
    """
    if ctx is not None:
        return ctx, False
    return ExecutionContext(backend=backend, workers=workers,
                            cost=cost, mem=mem, crew=crew,
                            trace=trace), True
