"""ExecutionContext: the unified per-run execution runtime.

Every algorithm in this library is a sequence of *parallel rounds* over
NumPy arrays.  An :class:`ExecutionContext` bundles everything one run
needs to execute those rounds and account for them:

- a ``backend`` switch (``'serial'`` or ``'threaded'``) with a worker
  count (argument, else ``$REPRO_WORKERS``, else the CPU count);
- the chunked thread-pool machinery (:mod:`repro.machine.parallel`)
  behind one :meth:`map_chunks` seam;
- the :class:`~repro.machine.costmodel.CostModel` and
  :class:`~repro.machine.memmodel.MemoryModel` accounting books;
- per-phase wall-clock timers (:meth:`phase`).

The contract every engine written against this context obeys: the
*threaded* backend chunks each round over independent spans and combines
the partial results in deterministic chunk order, so colors, waves, and
the recorded work/depth/memory totals are **bit-identical** to the
serial backend.  On the serial backend :meth:`map_chunks` degrades to a
single chunk — zero chunking overhead, exactly the monolithic
vectorized round.

Future backends (process pools, numba kernels) plug in here: implement
the :meth:`map_chunks` seam for the new backend and every engine gains
it without another per-algorithm fork.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, TypeVar

from ..machine.costmodel import CostModel
from ..machine.memmodel import MemoryModel
from ..machine.parallel import default_workers, split_chunks

T = TypeVar("T")

BACKENDS = ("serial", "threaded")

#: Chunks per worker: oversubscription smooths load imbalance between
#: spans (frontier vertices have wildly varying degrees).
CHUNKS_PER_WORKER = 4


def default_backend() -> str:
    """Backend: $REPRO_BACKEND if set (and valid), else 'serial'."""
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not env:
        return "serial"
    if env not in BACKENDS:
        raise ValueError(f"$REPRO_BACKEND must be one of {BACKENDS}, "
                         f"got {env!r}")
    return env


class ExecutionContext:
    """One object carrying backend, pool, accounting, and timers.

    Parameters
    ----------
    backend:
        ``'serial'`` or ``'threaded'``; ``None`` resolves via
        :func:`default_backend` (``$REPRO_BACKEND``, else serial).
    workers:
        Thread count for the threaded backend; ``None`` resolves via
        ``$REPRO_WORKERS``, else the CPU count.  Forced to 1 on the
        serial backend.
    cost, mem:
        Accounting books to record into; fresh models when ``None``.
    crew:
        Passed to a freshly created :class:`CostModel` (CREW charging
        for scatter primitives).

    The context is a context manager; the thread pool is created lazily
    on first threaded :meth:`map_chunks` and shut down by
    :meth:`close` / ``__exit__``.  :meth:`child` derives a context with
    fresh accounting books that *shares* the pool (used to account an
    ordering phase separately from the coloring phase of one run).
    """

    def __init__(self, backend: str | None = None, workers: int | None = None,
                 cost: CostModel | None = None, mem: MemoryModel | None = None,
                 crew: bool = False,
                 _pool_host: "ExecutionContext | None" = None):
        self.backend = backend if backend is not None else default_backend()
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.backend == "serial":
            self.workers = 1
        else:
            self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.cost = cost if cost is not None else CostModel(crew=crew)
        self.mem = mem if mem is not None else MemoryModel()
        self.wall_by_phase: dict[str, float] = {}
        self._pool_host = _pool_host if _pool_host is not None else self
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool (only if this context is its host)."""
        if self._pool_host is self and self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def child(self, cost: CostModel | None = None,
              mem: MemoryModel | None = None,
              crew: bool = False) -> "ExecutionContext":
        """Same backend/workers/pool, fresh accounting books and timers."""
        return ExecutionContext(backend=self.backend, workers=self.workers,
                                cost=cost, mem=mem, crew=crew,
                                _pool_host=self._pool_host)

    def _acquire_pool(self) -> ThreadPoolExecutor | None:
        host = self._pool_host
        if host._pool is None and self.backend == "threaded" \
                and self.workers > 1:
            host._pool = ThreadPoolExecutor(max_workers=self.workers)
        return host._pool

    # -- execution -----------------------------------------------------------

    def map_chunks(self, fn: Callable[[int, int], T], n: int) -> list[T]:
        """Run ``fn(lo, hi)`` over a chunking of range(n), in chunk order.

        Serial backend (or 1 worker): one chunk, executed inline — the
        call is exactly ``[fn(0, n)]``.  Threaded backend: balanced
        chunks on the shared pool; results are returned in chunk order,
        so order-dependent combines are deterministic.
        """
        if self.backend == "serial" or self.workers <= 1:
            return [fn(lo, hi) for lo, hi in split_chunks(n, 1)]
        chunks = split_chunks(n, self.workers * CHUNKS_PER_WORKER)
        pool = self._acquire_pool()
        if pool is None or len(chunks) <= 1:
            return [fn(lo, hi) for lo, hi in chunks]
        futures = [pool.submit(fn, lo, hi) for lo, hi in chunks]
        return [f.result() for f in futures]

    # -- accounting ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute cost *and wall-clock time* inside the block to ``name``."""
        t0 = time.perf_counter()
        with self.cost.phase(name):
            try:
                yield self
            finally:
                elapsed = time.perf_counter() - t0
                self.wall_by_phase[name] = \
                    self.wall_by_phase.get(name, 0.0) + elapsed

    def describe(self) -> dict:
        """Flat record of the execution configuration (for result rows)."""
        return {"backend": self.backend, "workers": self.workers}


def resolve_context(ctx: ExecutionContext | None,
                    backend: str | None = None,
                    workers: int | None = None,
                    cost: CostModel | None = None,
                    mem: MemoryModel | None = None,
                    crew: bool = False) -> tuple[ExecutionContext, bool]:
    """Return ``(context, owns)`` for an engine entry point.

    When the caller supplied a context it is used as-is (``owns`` False:
    the caller manages the pool); otherwise a fresh one is built from
    ``backend``/``workers``/accounting arguments and ``owns`` is True —
    the engine must ``close()`` it (or use it as a context manager).
    """
    if ctx is not None:
        return ctx, False
    return ExecutionContext(backend=backend, workers=workers,
                            cost=cost, mem=mem, crew=crew), True
